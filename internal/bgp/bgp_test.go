package bgp

import (
	"bytes"
	"context"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/prefix2org/prefix2org/internal/netx"
)

func mp(s string) netip.Prefix { return netx.MustParse(s) }

func TestUpdateMarshalParseRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{mp("198.51.100.0/24")},
		ASPath:    []uint32{64500, 64501, 4200000001},
		NLRI:      []netip.Prefix{mp("203.0.113.0/24"), mp("10.0.0.0/8"), mp("2001:db8::/32")},
	}
	msg, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdate(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ASPath, u.ASPath) {
		t.Errorf("ASPath = %v, want %v", back.ASPath, u.ASPath)
	}
	if !reflect.DeepEqual(back.Withdrawn, u.Withdrawn) {
		t.Errorf("Withdrawn = %v, want %v", back.Withdrawn, u.Withdrawn)
	}
	if len(back.NLRI) != 3 {
		t.Fatalf("NLRI = %v", back.NLRI)
	}
	want := map[string]bool{"203.0.113.0/24": true, "10.0.0.0/8": true, "2001:db8::/32": true}
	for _, p := range back.NLRI {
		if !want[p.String()] {
			t.Errorf("unexpected NLRI %s", p)
		}
	}
	if origin, ok := back.Origin(); !ok || origin != 4200000001 {
		t.Errorf("Origin = %d,%v", origin, ok)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{mp("10.0.0.0/8")}}
	msg, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdate(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.NLRI) != 0 || len(back.Withdrawn) != 1 {
		t.Errorf("roundtrip = %+v", back)
	}
	if _, ok := back.Origin(); ok {
		t.Error("withdraw-only update has an origin")
	}
}

func TestMarshalRejectsBadUpdates(t *testing.T) {
	if _, err := (&Update{NLRI: []netip.Prefix{mp("10.0.0.0/8")}}).Marshal(); err == nil {
		t.Error("announcement without AS path accepted")
	}
	if _, err := (&Update{Withdrawn: []netip.Prefix{mp("2001:db8::/32")}}).Marshal(); err == nil {
		t.Error("IPv6 withdrawal accepted by v4-only withdrawal codec")
	}
}

func TestParseUpdateRejectsGarbage(t *testing.T) {
	good, _ := (&Update{ASPath: []uint32{1}, NLRI: []netip.Prefix{mp("10.0.0.0/8")}}).Marshal()
	cases := map[string][]byte{
		"short":      good[:10],
		"bad marker": append([]byte{0}, good[1:]...),
		"bad length": func() []byte { b := append([]byte{}, good...); b[16] = 0xFF; return b }(),
		"not update": func() []byte { b := append([]byte{}, good...); b[18] = 1; return b }(),
		"truncated":  func() []byte { b := append([]byte{}, good...); b = b[:len(b)-1]; b[17]--; return b }(),
	}
	for name, msg := range cases {
		if _, err := ParseUpdate(msg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Property: random updates survive the wire round trip.
func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := &Update{}
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			u.ASPath = append(u.ASPath, rng.Uint32())
		}
		for i := 0; i < 1+rng.Intn(10); i++ {
			if rng.Intn(3) == 0 {
				var a [16]byte
				a[0], a[1] = 0x20, 0x01
				rng.Read(a[2:8])
				u.NLRI = append(u.NLRI, netip.PrefixFrom(netip.AddrFrom16(a), 16+rng.Intn(49)).Masked())
			} else {
				var a [4]byte
				rng.Read(a[:])
				u.NLRI = append(u.NLRI, netip.PrefixFrom(netip.AddrFrom4(a), 8+rng.Intn(25)).Masked())
			}
		}
		msg, err := u.Marshal()
		if err != nil {
			return false
		}
		back, err := ParseUpdate(msg)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(back.ASPath, u.ASPath) {
			return false
		}
		got := map[netip.Prefix]bool{}
		for _, p := range back.NLRI {
			got[p] = true
		}
		for _, p := range u.NLRI {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCollectorApplyAndWithdraw(t *testing.T) {
	c := NewCollector("rv-test")
	ann := &Update{ASPath: []uint32{100, 200}, NLRI: []netip.Prefix{mp("10.0.0.0/8"), mp("11.0.0.0/8")}}
	if err := c.Apply(100, ann); err != nil {
		t.Fatal(err)
	}
	wd := &Update{Withdrawn: []netip.Prefix{mp("11.0.0.0/8")}}
	if err := c.Apply(100, wd); err != nil {
		t.Fatal(err)
	}
	dump := c.Dump()
	if len(dump) != 1 || dump[0].Prefix != mp("10.0.0.0/8") {
		t.Fatalf("dump = %+v", dump)
	}
	if o, _ := dump[0].Origin(); o != 200 {
		t.Errorf("origin = %d", o)
	}
	// Wire path.
	raw, err := (&Update{ASPath: []uint32{300, 400}, NLRI: []netip.Prefix{mp("12.0.0.0/8")}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyRaw(300, raw); err != nil {
		t.Fatal(err)
	}
	if len(c.Dump()) != 2 {
		t.Errorf("dump after raw apply = %d entries", len(c.Dump()))
	}
}

func TestCollectorLatestPathWins(t *testing.T) {
	c := NewCollector("rv")
	c.Apply(1, &Update{ASPath: []uint32{1, 2}, NLRI: []netip.Prefix{mp("10.0.0.0/8")}})
	c.Apply(1, &Update{ASPath: []uint32{1, 3}, NLRI: []netip.Prefix{mp("10.0.0.0/8")}})
	dump := c.Dump()
	if len(dump) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if o, _ := dump[0].Origin(); o != 3 {
		t.Errorf("origin = %d, want 3 (implicit withdraw)", o)
	}
}

func TestTableAggregation(t *testing.T) {
	tbl := NewTable()
	tbl.Add(mp("10.0.0.0/8"), 100)
	tbl.Add(mp("10.0.0.0/8"), 50) // MOAS
	tbl.Add(mp("2001:db8::/32"), 200)
	tbl.Add(mp("0.0.0.0/0"), 1) // filtered: coarser than /8
	tbl.Add(mp("2000::/12"), 2) // filtered: coarser than /16
	if got := tbl.Origins(mp("10.0.0.0/8")); len(got) != 2 || got[0] != 50 || got[1] != 100 {
		t.Errorf("Origins = %v", got)
	}
	if o, ok := tbl.Origin(mp("10.0.0.0/8")); !ok || o != 50 {
		t.Errorf("Origin = %d,%v", o, ok)
	}
	if _, ok := tbl.Origin(mp("99.0.0.0/8")); ok {
		t.Error("missing prefix has origin")
	}
	ps := tbl.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("Prefixes = %v (default route and 2000::/12 must be filtered)", ps)
	}
	if tbl.OriginCount() != 3 {
		t.Errorf("OriginCount = %d", tbl.OriginCount())
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestMRTRoundTrip(t *testing.T) {
	entries := []Entry{
		{Collector: "route-views2", PeerASN: 3356, Prefix: mp("10.0.0.0/8"), ASPath: []uint32{3356, 100}},
		{Collector: "route-views2", PeerASN: 3356, Prefix: mp("2001:db8::/32"), ASPath: []uint32{3356, 200}},
		{Collector: "rrc00", PeerASN: 1299, Prefix: mp("10.0.0.0/8"), ASPath: []uint32{1299, 2914, 100}},
	}
	var buf bytes.Buffer
	if err := WriteMRT(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Errorf("roundtrip:\n got %+v\nwant %+v", back, entries)
	}
}

func TestMRTEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMRT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("roundtrip of empty dump = %v", back)
	}
}

func TestMRTRejectsGarbage(t *testing.T) {
	if _, err := ReadMRT(bytes.NewReader([]byte("NOTMRT!!"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	WriteMRT(&buf, []Entry{{Collector: "c", PeerASN: 1, Prefix: mp("10.0.0.0/8"), ASPath: []uint32{1}}})
	b := buf.Bytes()
	if _, err := ReadMRT(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Error("truncated dump accepted")
	}
}

func TestMRTRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var entries []Entry
	colls := []string{"route-views2", "route-views6", "rrc00", "rrc01"}
	for i := 0; i < 500; i++ {
		var p netip.Prefix
		if rng.Intn(4) == 0 {
			var a [16]byte
			a[0], a[1] = 0x20, 0x01
			rng.Read(a[2:6])
			p = netip.PrefixFrom(netip.AddrFrom16(a), 16+rng.Intn(49)).Masked()
		} else {
			var a [4]byte
			rng.Read(a[:])
			p = netip.PrefixFrom(netip.AddrFrom4(a), 8+rng.Intn(25)).Masked()
		}
		path := make([]uint32, 1+rng.Intn(6))
		for j := range path {
			path[j] = rng.Uint32() % 400000
		}
		entries = append(entries, Entry{
			Collector: colls[rng.Intn(len(colls))],
			PeerASN:   rng.Uint32() % 65000,
			Prefix:    p,
			ASPath:    path,
		})
	}
	var buf bytes.Buffer
	if err := WriteMRT(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Error("random roundtrip mismatch")
	}
}

func TestWriteDirLoadDir(t *testing.T) {
	dir := t.TempDir()
	entries := []Entry{
		{Collector: "rv", PeerASN: 1, Prefix: mp("10.0.0.0/8"), ASPath: []uint32{1, 100}},
		{Collector: "rv", PeerASN: 1, Prefix: mp("10.1.0.0/16"), ASPath: []uint32{1, 100, 200}},
	}
	if err := WriteDir(dir, entries); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadDir(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("table len = %d", tbl.Len())
	}
	if o, _ := tbl.Origin(mp("10.1.0.0/16")); o != 200 {
		t.Errorf("origin = %d", o)
	}
	if _, err := LoadDir(context.Background(), t.TempDir()); err == nil {
		t.Error("missing snapshot accepted")
	}
}

// Full path integration: synthesize updates, run them through the wire
// format into collectors, dump via MRT, aggregate.
func TestEndToEndCollectorPath(t *testing.T) {
	c1 := NewCollector("route-views2")
	c2 := NewCollector("rrc00")
	mustApply := func(c *Collector, peer uint32, u *Update) {
		t.Helper()
		raw, err := u.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ApplyRaw(peer, raw); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(c1, 3356, &Update{ASPath: []uint32{3356, 100}, NLRI: []netip.Prefix{mp("10.0.0.0/8")}})
	mustApply(c2, 1299, &Update{ASPath: []uint32{1299, 2914, 100}, NLRI: []netip.Prefix{mp("10.0.0.0/8")}})
	mustApply(c2, 1299, &Update{ASPath: []uint32{1299, 200}, NLRI: []netip.Prefix{mp("2001:db8::/32")}})

	var buf bytes.Buffer
	if err := WriteMRT(&buf, append(c1.Dump(), c2.Dump()...)); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable()
	tbl.AddEntries(entries)
	if o, _ := tbl.Origin(mp("10.0.0.0/8")); o != 100 {
		t.Errorf("origin = %d", o)
	}
	if got := tbl.Prefixes(); len(got) != 2 {
		t.Errorf("prefixes = %v", got)
	}
}

// Extended-length path attributes: an AS path longer than 63 hops encodes
// to more than 255 bytes and must use the extended-length attribute form.
func TestUpdateExtendedLengthASPath(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{mp("10.0.0.0/8")}}
	for i := 0; i < 80; i++ {
		u.ASPath = append(u.ASPath, uint32(1000+i))
	}
	msg, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdate(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ASPath, u.ASPath) {
		t.Errorf("extended-length AS path corrupted: %d hops back", len(back.ASPath))
	}
}

// An AS_PATH segment can hold at most 255 ASNs; the encoder currently
// emits a single AS_SEQUENCE, so reject paths beyond that rather than
// silently truncating.
func TestCollectorPathIsolation(t *testing.T) {
	c := NewCollector("rv")
	path := []uint32{1, 2, 3}
	c.Apply(1, &Update{ASPath: path, NLRI: []netip.Prefix{mp("10.0.0.0/8")}})
	path[2] = 999 // caller mutates its slice after Apply
	dump := c.Dump()
	if o, _ := dump[0].Origin(); o != 3 {
		t.Errorf("collector aliased caller's path slice: origin %d", o)
	}
}

func TestTablePrefixesSorted(t *testing.T) {
	tbl := NewTable()
	tbl.Add(mp("11.0.0.0/8"), 1)
	tbl.Add(mp("10.0.0.0/8"), 1)
	tbl.Add(mp("10.0.0.0/16"), 1)
	tbl.Add(mp("2001:db8::/32"), 1)
	ps := tbl.Prefixes()
	for i := 1; i < len(ps); i++ {
		if netx.Compare(ps[i-1], ps[i]) >= 0 {
			t.Fatalf("Prefixes not sorted: %v", ps)
		}
	}
}

func TestMRTLongPathRejected(t *testing.T) {
	path := make([]uint32, 300)
	var buf bytes.Buffer
	err := WriteMRT(&buf, []Entry{{Collector: "c", PeerASN: 1, Prefix: mp("10.0.0.0/8"), ASPath: path}})
	if err == nil {
		t.Error("300-hop path accepted by MRT writer")
	}
}

func TestMarshalRejectsOverlongPath(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{mp("10.0.0.0/8")}, ASPath: make([]uint32, 300)}
	if _, err := u.Marshal(); err == nil {
		t.Error("300-hop AS path accepted")
	}
}
