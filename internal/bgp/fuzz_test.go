package bgp

import (
	"bytes"
	"net/netip"
	"testing"
)

// Fuzz targets double as robustness tests: `go test` runs the seed corpus;
// `go test -fuzz=FuzzX` explores further. The invariant under fuzzing is
// "no panic, and anything that parses re-encodes consistently".

func FuzzParseUpdate(f *testing.F) {
	seed, _ := (&Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		ASPath:    []uint32{64500, 4200000001},
		NLRI:      []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8"), netip.MustParsePrefix("2001:db8::/32")},
	}).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 19))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := ParseUpdate(data)
		if err != nil {
			return
		}
		// A parsed update must re-marshal unless it exceeds structural
		// limits (no AS path with NLRI, oversize, v6 withdrawals).
		if len(u.NLRI) > 0 && len(u.ASPath) > 0 && len(u.ASPath) <= 255 {
			if _, err := u.Marshal(); err != nil {
				// Oversize re-encodings are acceptable; panics are not.
				t.Logf("re-marshal: %v", err)
			}
		}
	})
}

func FuzzReadMRT(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMRT(&buf, []Entry{
		{Collector: "rv", PeerASN: 1, Prefix: netip.MustParsePrefix("10.0.0.0/8"), ASPath: []uint32{1, 2}},
		{Collector: "rrc", PeerASN: 2, Prefix: netip.MustParsePrefix("2001:db8::/32"), ASPath: []uint32{2}},
	})
	f.Add(buf.Bytes())
	f.Add([]byte("P2OMRT1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadMRT(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round trip what parsed.
		var out bytes.Buffer
		if err := WriteMRT(&out, entries); err != nil {
			return
		}
		back, err := ReadMRT(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("rewrite unparseable: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("roundtrip lost entries: %d vs %d", len(back), len(entries))
		}
	})
}
