package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Minimal BGP-4 session layer (RFC 4271 subset with the RFC 6793
// four-octet-AS capability): enough for a synthetic peer to feed a
// collector over a real TCP connection, the way RouteViews and RIS
// collectors receive their routes. The FSM is reduced to
// connect → OPEN exchange → KEEPALIVE exchange → established.

// Message type codes.
const (
	msgOpen      = 1
	msgUpdate    = 2
	msgKeepalive = 4
)

// readMessage reads one framed BGP message (header + body) from r.
func readMessage(r io.Reader) (msgType byte, body []byte, err error) {
	var hdr [19]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	for i := 0; i < 16; i++ {
		if hdr[i] != 0xFF {
			return 0, nil, fmt.Errorf("bgp: bad marker in message header")
		}
	}
	total := int(binary.BigEndian.Uint16(hdr[16:18]))
	if total < 19 || total > 4096 {
		return 0, nil, fmt.Errorf("bgp: bad message length %d", total)
	}
	body = make([]byte, total-19)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[18], body, nil
}

func writeMessage(w io.Writer, msgType byte, body []byte) error {
	total := 19 + len(body)
	if total > 4096 {
		return fmt.Errorf("bgp: message exceeds 4096 bytes")
	}
	hdr := make([]byte, 19, total)
	for i := 0; i < 16; i++ {
		hdr[i] = 0xFF
	}
	binary.BigEndian.PutUint16(hdr[16:18], uint16(total))
	hdr[18] = msgType
	_, err := w.Write(append(hdr, body...))
	return err
}

// openMessage encodes a BGP OPEN with the 4-octet-AS capability.
func openMessage(asn uint32, holdTime uint16, routerID [4]byte) []byte {
	// Legacy AS field: AS_TRANS (23456) when the ASN needs four octets.
	legacy := uint16(23456)
	if asn <= 0xFFFF {
		legacy = uint16(asn)
	}
	capa := []byte{65, 4, byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)} // cap 65: 4-octet AS
	opt := append([]byte{2, byte(len(capa))}, capa...)                                 // param 2: capabilities
	body := []byte{4, byte(legacy >> 8), byte(legacy)}
	body = append(body, byte(holdTime>>8), byte(holdTime))
	body = append(body, routerID[:]...)
	body = append(body, byte(len(opt)))
	return append(body, opt...)
}

// parseOpen extracts the peer ASN (preferring the 4-octet capability).
func parseOpen(body []byte) (asn uint32, holdTime uint16, err error) {
	if len(body) < 10 {
		return 0, 0, fmt.Errorf("bgp: truncated OPEN")
	}
	if body[0] != 4 {
		return 0, 0, fmt.Errorf("bgp: unsupported BGP version %d", body[0])
	}
	asn = uint32(binary.BigEndian.Uint16(body[1:3]))
	holdTime = binary.BigEndian.Uint16(body[3:5])
	optLen := int(body[9])
	opts := body[10:]
	if len(opts) < optLen {
		return 0, 0, fmt.Errorf("bgp: truncated OPEN parameters")
	}
	opts = opts[:optLen]
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return 0, 0, fmt.Errorf("bgp: truncated OPEN parameter")
		}
		val := opts[2 : 2+plen]
		if ptype == 2 { // capabilities
			for len(val) >= 2 {
				code, clen := val[0], int(val[1])
				if len(val) < 2+clen {
					return 0, 0, fmt.Errorf("bgp: truncated capability")
				}
				if code == 65 && clen == 4 { // 4-octet AS
					asn = binary.BigEndian.Uint32(val[2:6])
				}
				val = val[2+clen:]
			}
		}
		opts = opts[2+plen:]
	}
	return asn, holdTime, nil
}

// Session is an established BGP session over a net.Conn.
type Session struct {
	conn    net.Conn
	PeerASN uint32
	mu      sync.Mutex
}

// Handshake performs the OPEN/KEEPALIVE exchange on conn and returns the
// established session. Both sides call it (the protocol is symmetric at
// this reduced fidelity).
func Handshake(conn net.Conn, localASN uint32, timeout time.Duration) (*Session, error) {
	if timeout > 0 {
		//p2olint:ignore determinism handshake deadline on a live BGP session, never part of build output
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	// Writes run concurrently with reads: both ends of a BGP session send
	// their OPEN (then KEEPALIVE) without waiting for the peer's, and
	// fully synchronous transports (net.Pipe) would deadlock otherwise.
	routerID := [4]byte{192, 0, 2, byte(localASN)}
	sendErr := make(chan error, 1)
	go func() {
		if err := writeMessage(conn, msgOpen, openMessage(localASN, 180, routerID)); err != nil {
			sendErr <- fmt.Errorf("bgp: send OPEN: %w", err)
			return
		}
		sendErr <- writeMessage(conn, msgKeepalive, nil)
	}()
	mt, body, err := readMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgp: read OPEN: %w", err)
	}
	if mt != msgOpen {
		return nil, fmt.Errorf("bgp: expected OPEN, got type %d", mt)
	}
	peerASN, _, err := parseOpen(body)
	if err != nil {
		return nil, err
	}
	mt, _, err = readMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("bgp: read KEEPALIVE: %w", err)
	}
	if mt != msgKeepalive {
		return nil, fmt.Errorf("bgp: expected KEEPALIVE, got type %d", mt)
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	return &Session{conn: conn, PeerASN: peerASN}, nil
}

// Send transmits one UPDATE.
func (s *Session) Send(u *Update) error {
	msg, err := u.Marshal()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.conn.Write(msg)
	return err
}

// SendKeepalive transmits a KEEPALIVE.
func (s *Session) SendKeepalive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeMessage(s.conn, msgKeepalive, nil)
}

// Recv reads messages until the next UPDATE (skipping KEEPALIVEs) and
// decodes it. io.EOF signals a clean remote close.
func (s *Session) Recv() (*Update, error) {
	for {
		mt, body, err := readMessage(s.conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, io.EOF
			}
			return nil, err
		}
		switch mt {
		case msgKeepalive:
			continue
		case msgUpdate:
			// Re-frame: ParseUpdate expects the full message.
			full := make([]byte, 19+len(body))
			for i := 0; i < 16; i++ {
				full[i] = 0xFF
			}
			binary.BigEndian.PutUint16(full[16:18], uint16(len(full)))
			full[18] = msgUpdate
			copy(full[19:], body)
			return ParseUpdate(full)
		default:
			return nil, fmt.Errorf("bgp: unexpected message type %d in established state", mt)
		}
	}
}

// Close terminates the session's transport.
func (s *Session) Close() error { return s.conn.Close() }

// CollectorServer accepts BGP peers over TCP and feeds their UPDATEs to a
// Collector — the RouteViews deployment shape.
type CollectorServer struct {
	Collector *Collector
	LocalASN  uint32

	lis  net.Listener
	done chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex // serializes Collector.Apply
}

// NewCollectorServer wraps a collector for serving.
func NewCollectorServer(c *Collector, localASN uint32) *CollectorServer {
	return &CollectorServer{Collector: c, LocalASN: localASN, done: make(chan struct{})}
}

// Start listens on addr and returns the bound address.
func (cs *CollectorServer) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("bgp: listen %s: %w", addr, err)
	}
	cs.lis = lis
	cs.wg.Add(1)
	go cs.acceptLoop()
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for peer goroutines.
func (cs *CollectorServer) Close() error {
	close(cs.done)
	var err error
	if cs.lis != nil {
		err = cs.lis.Close()
	}
	cs.wg.Wait()
	return err
}

func (cs *CollectorServer) acceptLoop() {
	defer cs.wg.Done()
	for {
		conn, err := cs.lis.Accept()
		if err != nil {
			select {
			case <-cs.done:
				return
			default:
				continue
			}
		}
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			defer conn.Close()
			sess, err := Handshake(conn, cs.LocalASN, 10*time.Second)
			if err != nil {
				return
			}
			for {
				u, err := sess.Recv()
				if err != nil {
					return
				}
				cs.mu.Lock()
				_ = cs.Collector.Apply(sess.PeerASN, u)
				cs.mu.Unlock()
			}
		}()
	}
}
