package bgp

import (
	"fmt"
	"net/netip"
	"slices"
	"sort"

	"github.com/prefix2org/prefix2org/internal/netx"
)

// Entry is one RIB entry as seen by one collector from one peer.
type Entry struct {
	Collector string
	PeerASN   uint32
	Prefix    netip.Prefix
	ASPath    []uint32
}

// Origin returns the path's origin ASN.
func (e *Entry) Origin() (uint32, bool) {
	if len(e.ASPath) == 0 {
		return 0, false
	}
	return e.ASPath[len(e.ASPath)-1], true
}

// Collector maintains per-peer RIBs by applying UPDATE messages, the way
// a RouteViews or RIS collector does.
type Collector struct {
	Name string
	// ribs: peer ASN -> prefix -> AS path.
	ribs map[uint32]map[netip.Prefix][]uint32
}

// NewCollector returns a collector with no peers.
func NewCollector(name string) *Collector {
	return &Collector{Name: name, ribs: map[uint32]map[netip.Prefix][]uint32{}}
}

// Apply processes one UPDATE received from peer.
func (c *Collector) Apply(peer uint32, u *Update) error {
	rib := c.ribs[peer]
	if rib == nil {
		rib = map[netip.Prefix][]uint32{}
		c.ribs[peer] = rib
	}
	for _, p := range u.Withdrawn {
		delete(rib, p.Masked())
	}
	if len(u.NLRI) > 0 {
		if len(u.ASPath) == 0 {
			return fmt.Errorf("bgp: collector %s: announcement from AS%d without AS path", c.Name, peer)
		}
		path := make([]uint32, len(u.ASPath))
		copy(path, u.ASPath)
		for _, p := range u.NLRI {
			rib[p.Masked()] = path
		}
	}
	return nil
}

// ApplyRaw decodes a wire-format UPDATE and applies it.
func (c *Collector) ApplyRaw(peer uint32, msg []byte) error {
	u, err := ParseUpdate(msg)
	if err != nil {
		return err
	}
	return c.Apply(peer, u)
}

// Dump returns the collector's RIB entries in deterministic order.
func (c *Collector) Dump() []Entry {
	var out []Entry
	for peer, rib := range c.ribs {
		for p, path := range rib {
			out = append(out, Entry{Collector: c.Name, PeerASN: peer, Prefix: p, ASPath: path})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := netx.Compare(out[i].Prefix, out[j].Prefix); c != 0 {
			return c < 0
		}
		if out[i].PeerASN != out[j].PeerASN {
			return out[i].PeerASN < out[j].PeerASN
		}
		return out[i].Collector < out[j].Collector
	})
	return out
}

// Table is the aggregated routed-prefix view the pipeline consumes: for
// every prefix, the set of origin ASNs observed across all collectors
// (several origins = MOAS).
type Table struct {
	// origins holds each prefix's origin set as a sorted, deduplicated
	// slice: almost every prefix has exactly one origin (MOAS is rare),
	// so a slice beats a per-prefix set both on load (no inner map
	// allocation per prefix) and on lookup (Origin reads element 0).
	origins map[netip.Prefix][]uint32
	// spare is a chunk allocator for the single-origin sets that
	// dominate the table: carving them out of shared blocks replaces one
	// tiny allocation per routed prefix. A set that grows past its carve
	// is copied out by slices.Insert; the chunk slot it leaves behind is
	// simply dead.
	spare []uint32
	// entries counts the RIB entries merged via AddEntries, for the
	// pipeline's load accounting.
	entries int
	// filtered counts the distinct prefixes the specificity filter
	// excludes, maintained on first insert so FilteredCount never scans
	// the map.
	filtered int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{origins: map[netip.Prefix][]uint32{}}
}

// Add records that prefix was originated by origin.
func (t *Table) Add(prefix netip.Prefix, origin uint32) {
	t.add(prefix.Masked(), origin)
}

// add is Add for a prefix the caller guarantees is already masked.
func (t *Table) add(p netip.Prefix, origin uint32) {
	s := t.origins[p]
	if s == nil {
		if tooCoarse(p) {
			t.filtered++
		}
		if len(t.spare) == cap(t.spare) {
			t.spare = make([]uint32, 0, 1024)
		}
		n := len(t.spare)
		t.spare = append(t.spare, origin)
		t.origins[p] = t.spare[n : n+1 : n+1]
		return
	}
	i, found := slices.BinarySearch(s, origin)
	if found {
		return
	}
	t.origins[p] = slices.Insert(s, i, origin)
}

// AddEntries merges RIB entries into the table, skipping pathless entries.
func (t *Table) AddEntries(entries []Entry) {
	if len(t.origins) == 0 && len(entries) > 0 {
		// A fresh table being bulk-loaded: presize for the common ~4
		// RIB entries per distinct prefix.
		t.origins = make(map[netip.Prefix][]uint32, len(entries)/4)
	}
	t.entries += len(entries)
	for i := range entries {
		if origin, ok := entries[i].Origin(); ok {
			t.Add(entries[i].Prefix, origin)
		}
	}
}

// EntryCount returns the number of RIB entries merged via AddEntries.
func (t *Table) EntryCount() int { return t.entries }

// FilteredCount returns how many routed prefixes the specificity filter
// (IPv4 coarser than /8, IPv6 coarser than /16) excludes from Prefixes.
func (t *Table) FilteredCount() int { return t.filtered }

// Origins returns the origin set for prefix in ascending order.
func (t *Table) Origins(prefix netip.Prefix) []uint32 {
	return slices.Clone(t.origins[prefix.Masked()])
}

// Origin returns the canonical (lowest) origin for prefix — the pipeline
// keys ASN clustering on a single origin per prefix, and MOAS prefixes
// are rare enough that the deterministic choice suffices.
func (t *Table) Origin(prefix netip.Prefix) (uint32, bool) {
	s := t.origins[prefix.Masked()]
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// Len returns the number of routed prefixes in the table.
func (t *Table) Len() int { return len(t.origins) }

// Prefixes returns all routed prefixes that pass the paper's specificity
// filter — IPv4 no less specific than /8, IPv6 no less specific than /16,
// since RIRs have never delegated larger blocks — in canonical order.
func (t *Table) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.origins))
	for p := range t.origins {
		if tooCoarse(p) {
			continue
		}
		out = append(out, p)
	}
	netx.Sort(out)
	return out
}

func tooCoarse(p netip.Prefix) bool {
	if p.Addr().Is4() {
		return p.Bits() < 8
	}
	return p.Bits() < 16
}

// OriginCount returns the number of distinct origin ASNs across the
// prefixes that pass the specificity filter — the paper's "originated
// from 84.3k ASes" accounting.
func (t *Table) OriginCount() int {
	seen := map[uint32]bool{}
	for p, s := range t.origins {
		if tooCoarse(p) {
			continue
		}
		for _, a := range s {
			seen[a] = true
		}
	}
	return len(seen)
}
