package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// pinReleaseRule enforces the snapshot pin lifecycle around the store's
// Acquire API: a handler that pins a snapshot must release it on every
// exit, and neither the pinned snapshot nor its release func may leak
// into state that outlives the request. A leaked pin keeps a
// swapped-out snapshot's mmap alive forever; a leaked alias dangles
// once the mapping closes. The runtime backstop is the mapping-lifetime
// e2e test; this pass catches the bug at `make verify` time.
//
// The analysis is a lexical statement-graph approximation, not a full
// CFG: a release discharges the pin for every return that follows it in
// source order. That is exact for the repository's handler shape
// (acquire, defer release, straight-line body) and deliberately strict
// about the shapes it cannot prove — an early return before the defer,
// a release func stored into a struct — which need an explicit
// //p2olint:ignore with a reason.
func pinReleaseRule(m *Module, cfg *Config) []Finding {
	if cfg.Pin.StoreType == "" || cfg.Pin.Method == "" {
		return nil
	}
	var out []Finding
	for _, p := range m.Pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				out = append(out, checkPinSites(m, p, fn, cfg)...)
			}
		}
	}
	return out
}

// isPinAcquire reports whether call invokes the configured pinning
// method (cfg.Pin.Method on cfg.Pin.StoreType).
func isPinAcquire(p *Package, call *ast.CallExpr, cfg *Config) bool {
	f := calleeOf(p.Info, call)
	if f == nil || f.Name() != cfg.Pin.Method {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeOf(sig.Recv().Type()) == cfg.Pin.StoreType
}

// checkPinSites audits every Acquire call inside fn.
func checkPinSites(m *Module, p *Package, fn *ast.FuncDecl, cfg *Config) []Finding {
	var out []Finding
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPinAcquire(p, call, cfg) {
			return
		}
		as, ok := parentNode(stack).(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			out = append(out, m.finding(call.Pos(), RulePin, fmt.Sprintf(
				"result of %s must be captured as (snapshot, release); the pin cannot be released otherwise",
				cfg.Pin.Method)))
			return
		}
		out = append(out, checkOnePin(m, p, fn, as, cfg)...)
	})
	return out
}

// checkOnePin audits one `snap, release := store.Acquire()` site.
func checkOnePin(m *Module, p *Package, fn *ast.FuncDecl, as *ast.AssignStmt, cfg *Config) []Finding {
	snapID, ok1 := as.Lhs[0].(*ast.Ident)
	relID, ok2 := as.Lhs[1].(*ast.Ident)
	if !ok1 || !ok2 {
		return []Finding{m.finding(as.Pos(), RulePin, fmt.Sprintf(
			"results of %s must be assigned to plain variables, not fields or elements",
			cfg.Pin.Method))}
	}
	if relID.Name == "_" {
		return []Finding{m.finding(relID.Pos(), RulePin, fmt.Sprintf(
			"release func of %s is discarded; every pin needs a matching release on all exits",
			cfg.Pin.Method))}
	}
	relObj := p.Info.ObjectOf(relID)
	if relObj == nil {
		return nil // unresolved (type error); best-effort like every pass
	}
	var snapObj types.Object
	if snapID.Name != "_" {
		snapObj = p.Info.ObjectOf(snapID)
	}

	u := classifyPinUses(p, fn, relID, snapID, relObj, snapObj)
	var out []Finding
	for _, esc := range u.escapes {
		out = append(out, m.finding(esc.pos, RulePin, esc.msg))
	}
	if len(u.escapes) > 0 {
		// An escaped pin manages its own lifetime; flagging its exits
		// too would bury the real finding in cascades. The escape
		// finding (or its ignore annotation) owns the contract now.
		return out
	}
	returns := returnsIn(fn.Body)
	switch {
	case len(u.deferPos) > 0:
		// Deferred release covers every exit after the defer runs; only
		// returns squeezed between the acquire and the defer leak.
		first := minPos(u.deferPos)
		for _, ret := range returns {
			if ret > as.End() && ret < first {
				out = append(out, m.finding(ret, RulePin,
					"return exits before the release of the snapshot pin is deferred"))
			}
		}
	case len(u.dischargePos) > 0:
		first := minPos(u.dischargePos)
		for _, ret := range returns {
			if ret > as.End() && ret < first {
				out = append(out, m.finding(ret, RulePin,
					"return exits without releasing the snapshot pin"))
			}
		}
	default:
		out = append(out, m.finding(as.Pos(), RulePin,
			"release func is never invoked; the snapshot pin (and its mmap) leaks"))
	}
	return out
}

// pinEscape is one use of a pin that moves it out of the acquiring
// function's control.
type pinEscape struct {
	pos token.Pos
	msg string
}

// pinUses classifies every use of the release func and the pinned
// snapshot inside the acquiring function.
type pinUses struct {
	// deferPos are `defer release()` sites (directly or via an
	// immediately deferred closure).
	deferPos []token.Pos
	// dischargePos are sites that discharge the release obligation on
	// the path: a plain release() call, the func threaded into another
	// call (a Closer), or returned to the caller.
	dischargePos []token.Pos
	escapes      []pinEscape
}

func classifyPinUses(p *Package, fn *ast.FuncDecl, relID, snapID *ast.Ident, relObj, snapObj types.Object) pinUses {
	var u pinUses
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || id == relID || id == snapID {
			return
		}
		switch p.Info.ObjectOf(id) {
		case relObj:
			u.classifyRelease(p, id, stack)
		case snapObj:
			if snapObj != nil {
				u.classifySnapshot(p, id, stack)
			}
		}
	})
	return u
}

// classifyRelease sorts one use of the release func into defer /
// discharge / escape.
func (u *pinUses) classifyRelease(p *Package, id *ast.Ident, stack []ast.Node) {
	parent := parentNode(stack)
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == id {
		// release() invoked. Deferred, in a goroutine, inside a
		// closure, or plain — the enclosing context decides.
		switch encl := enclosingLitContext(stack); encl {
		case litNone:
			// The call's own parent: walk past the call (and any parens
			// between it and the ident) on the ancestor stack.
			idx := len(stack) - 1
			for idx >= 0 && stack[idx] != ast.Node(call) {
				idx--
			}
			above := parentNode(stack[:idx])
			switch above.(type) {
			case *ast.DeferStmt:
				u.deferPos = append(u.deferPos, id.Pos())
			case *ast.GoStmt:
				u.escapes = append(u.escapes, pinEscape{id.Pos(),
					"release func escapes into a goroutine; release on the acquiring path or annotate the handoff"})
			default:
				u.dischargePos = append(u.dischargePos, id.Pos())
			}
		case litDeferred:
			u.deferPos = append(u.deferPos, id.Pos())
		case litGoroutine:
			u.escapes = append(u.escapes, pinEscape{id.Pos(),
				"release func escapes into a goroutine; release on the acquiring path or annotate the handoff"})
		default:
			u.escapes = append(u.escapes, pinEscape{id.Pos(),
				"release func escapes into a closure; release on the acquiring path or annotate the handoff"})
		}
		return
	}
	if stackHasGo(stack) {
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"release func escapes into a goroutine; release on the acquiring path or annotate the handoff"})
		return
	}
	switch parent := parent.(type) {
	case *ast.CallExpr:
		// Threaded into another call — the httpd/bulk Closer shape. The
		// callee owns the obligation; lexically this discharges it.
		u.dischargePos = append(u.dischargePos, id.Pos())
	case *ast.ReturnStmt:
		// Returned: the caller inherits the pin.
		u.dischargePos = append(u.dischargePos, id.Pos())
	case *ast.AssignStmt:
		lhs := assignLHS(parent, id)
		if bid, ok := ast.Unparen(lhs).(*ast.Ident); ok && bid.Name == "_" {
			return // `_ = release` neither releases nor escapes
		}
		if sink := sinkName(p, lhs); sink != "" {
			u.escapes = append(u.escapes, pinEscape{id.Pos(), fmt.Sprintf(
				"release func escapes into %s; release on the acquiring path or annotate the handoff", sink)})
		} else {
			u.escapes = append(u.escapes, pinEscape{id.Pos(),
				"release func is aliased to another variable; call the func Acquire returned directly"})
		}
	case *ast.KeyValueExpr, *ast.CompositeLit:
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"release func escapes into a composite literal; release on the acquiring path or annotate the handoff"})
	case *ast.SendStmt:
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"release func escapes into a channel send; release on the acquiring path or annotate the handoff"})
	default:
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"release func escapes from the acquiring statement; release on the acquiring path or annotate the handoff"})
	}
}

// classifySnapshot flags uses that move the pinned snapshot into state
// outliving the request: struct fields, globals, composite literals,
// channels, goroutines. Reads (selectors, call arguments, returns) are
// the normal serving shape and pass.
func (u *pinUses) classifySnapshot(p *Package, id *ast.Ident, stack []ast.Node) {
	if stackHasGo(stack) {
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"pinned snapshot escapes into a goroutine; a pin is request-scoped (release governs the mapping lifetime)"})
		return
	}
	switch parent := parentNode(stack).(type) {
	case *ast.AssignStmt:
		if sink := sinkName(p, assignLHS(parent, id)); sink != "" {
			u.escapes = append(u.escapes, pinEscape{id.Pos(), fmt.Sprintf(
				"pinned snapshot escapes into %s; a pin is request-scoped (release governs the mapping lifetime)", sink)})
		}
	case *ast.KeyValueExpr, *ast.CompositeLit:
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"pinned snapshot escapes into a composite literal; a pin is request-scoped (release governs the mapping lifetime)"})
	case *ast.SendStmt:
		u.escapes = append(u.escapes, pinEscape{id.Pos(),
			"pinned snapshot escapes into a channel send; a pin is request-scoped (release governs the mapping lifetime)"})
	}
}

// assignLHS matches id's RHS slot to its LHS counterpart; on a shape
// mismatch (tuple assignment) it falls back to the first LHS.
func assignLHS(as *ast.AssignStmt, id *ast.Ident) ast.Expr {
	lhs := as.Lhs[0]
	for i, r := range as.Rhs {
		if ast.Unparen(r) == id && i < len(as.Lhs) {
			lhs = as.Lhs[i]
		}
	}
	return lhs
}

// sinkName names the long-lived sink lhs designates, or "" for an
// ordinary local.
func sinkName(p *Package, lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if x, ok := l.X.(*ast.Ident); ok {
			if _, isPkg := p.Info.ObjectOf(x).(*types.PkgName); isPkg {
				return "a package-level variable"
			}
		}
		return "a struct field"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.Ident:
		if isPkgLevelVar(p, p.Info.ObjectOf(l)) {
			return "a package-level variable"
		}
	}
	return ""
}

// litContext classifies the function literal (if any) enclosing a node.
type litContext int

const (
	litNone     litContext = iota
	litDeferred            // defer func() { ... }()
	litGoroutine
	litPlain
)

// enclosingLitContext finds the innermost FuncLit on the stack and
// reports how it is consumed.
func enclosingLitContext(stack []ast.Node) litContext {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		// The literal's own context: invoked directly under a defer
		// statement, launched on a goroutine, or anything else.
		if i >= 2 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
				switch stack[i-2].(type) {
				case *ast.DeferStmt:
					return litDeferred
				case *ast.GoStmt:
					return litGoroutine
				}
			}
		}
		if stackHasGo(stack[:i]) {
			return litGoroutine
		}
		return litPlain
	}
	return litNone
}

// returnsIn collects the positions of the return statements that exit
// the function itself (returns inside nested function literals exit the
// literal, not fn).
func returnsIn(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				return
			}
		}
		out = append(out, ret.Pos())
	})
	return out
}

func minPos(ps []token.Pos) token.Pos {
	min := ps[0]
	for _, p := range ps[1:] {
		if p < min {
			min = p
		}
	}
	return min
}
