package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the //p2olint:ignore parser with
// arbitrary comment text. The parser gates every suppression in the
// suite, so its invariants are contractual: deterministic, prefix-bound
// (only real directives parse), whitespace-normal (rule never holds
// whitespace, reason comes back trimmed), and round-trippable.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//p2olint:ignore determinism seeded rng for jitter")
	f.Add("//p2olint:ignore")
	f.Add("//p2olint:ignore  ")
	f.Add("//p2olint:ignore rule-only")
	f.Add("//p2olint:ignored not a directive")
	f.Add("// regular comment")
	f.Add("//p2olint:ignore\thotpath-alloc\ttab separated reason")
	f.Add("//p2olint:ignore pin-release reason with trailing space ")
	f.Fuzz(func(t *testing.T, comment string) {
		rule, reason, ok := parseIgnoreDirective(comment)
		rule2, reason2, ok2 := parseIgnoreDirective(comment)
		if rule != rule2 || reason != reason2 || ok != ok2 {
			t.Fatalf("non-deterministic parse of %q", comment)
		}
		if !ok {
			if rule != "" || reason != "" {
				t.Fatalf("failed parse of %q leaked values (%q, %q)", comment, rule, reason)
			}
			return
		}
		if !strings.HasPrefix(comment, ignorePrefix) {
			t.Fatalf("parsed %q without the directive prefix", comment)
		}
		if strings.ContainsAny(rule, " \t") {
			t.Fatalf("rule %q from %q contains whitespace", rule, comment)
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q from %q is not trimmed", reason, comment)
		}
		if rule == "" && reason != "" {
			t.Fatalf("empty rule carries a reason %q in %q", reason, comment)
		}
		if rule != "" {
			// A parsed directive re-rendered in canonical form must
			// parse back to the same (rule, reason).
			rt := ignorePrefix + " " + rule
			if reason != "" {
				rt += " " + reason
			}
			rrule, rreason, rok := parseIgnoreDirective(rt)
			if !rok || rrule != rule || rreason != reason {
				t.Fatalf("round trip of %q diverged: (%q, %q, %v)", rt, rrule, rreason, rok)
			}
		}
	})
}
