package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgFunc reports whether f is the package-level function pkgPath.name.
func pkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAppend reports whether the call is the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// namedTypeOf dereferences pointers and returns the fully qualified
// name ("pkgpath.Type") of t's named type, or "".
func namedTypeOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// A *Named whose underlying is a pointer was handled above;
		// aliases resolve through Unalias.
		named, ok = types.Unalias(t).(*types.Named)
		if !ok {
			return ""
		}
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// derefNamed resolves t through one pointer indirection and returns the
// qualified name of the named type it points at (or is), or "".
func derefNamed(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// walkStack traverses root in source order, invoking visit with each
// node and the stack of its ancestors within root (outermost first, the
// immediate parent last). The pin-release and hotpath-alloc passes need
// ancestor context — "is this call under a defer?", "is this literal a
// direct call argument?" — that plain ast.Inspect cannot provide.
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parentNode returns the nearest ancestor on the stack that is not a
// ParenExpr, or nil.
func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// stackHasGo reports whether any ancestor on the stack is a go
// statement.
func stackHasGo(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// isPkgLevelVar reports whether obj is a package-scoped variable of p.
func isPkgLevelVar(p *Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && p.Pkg != nil && v.Parent() == p.Pkg.Scope()
}

// firstParamIsContext reports whether the signature's first parameter
// is context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return namedTypeOf(sig.Params().At(0).Type()) == "context.Context"
}
