package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgFunc reports whether f is the package-level function pkgPath.name.
func pkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Name() != name || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAppend reports whether the call is the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// namedTypeOf dereferences pointers and returns the fully qualified
// name ("pkgpath.Type") of t's named type, or "".
func namedTypeOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// A *Named whose underlying is a pointer was handled above;
		// aliases resolve through Unalias.
		named, ok = types.Unalias(t).(*types.Named)
		if !ok {
			return ""
		}
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// derefNamed resolves t through one pointer indirection and returns the
// qualified name of the named type it points at (or is), or "".
func derefNamed(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// firstParamIsContext reports whether the signature's first parameter
// is context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return namedTypeOf(sig.Params().At(0).Type()) == "context.Context"
}
