package lint

// DefaultConfig is the rule table for this repository, mirroring the
// contracts in ARCHITECTURE.md ("Enforced invariants" maps each entry
// back to the prose it guards). modPath is the module path from go.mod
// so the table works wherever the module is checked out.
func DefaultConfig(modPath string) *Config {
	// buildPath: everything between corpus bytes and the frozen
	// Dataset. obs, store, and the daemons are exempt — they measure
	// wall time and serve traffic by design.
	buildPath := []string{
		"", // root: flatten/resolve/cluster/stats orchestration
		"internal/synth",
		"internal/whois",
		"internal/bgp",
		"internal/rpki",
		"internal/as2org",
		"internal/cluster",
		"internal/delegated",
		"internal/leasing",
		"internal/names",
		"internal/diff",
		"internal/lpm",
		"internal/intern",
	}

	// Read-side I/O in these packages must be cancelable: loaders run
	// concurrently under BuildFromDir and the reloader, and a stuck
	// file or dial must not outlive its build.
	ioCtx := []string{
		"",
		"internal/whois",
		"internal/bgp",
		"internal/rpki",
		"internal/as2org",
		"internal/cluster",
		"internal/delegated",
		"internal/leasing",
		"internal/names",
		"internal/synth",
		"internal/experiments",
	}

	// The serving layer plus evaluation harnesses, which nothing on
	// the build path may reach up into.
	servingAndAbove := []string{
		"internal/store",
		"internal/whoisd",
		"internal/httpd",
		"internal/rtr",
		"internal/experiments",
		"internal/casestudy",
		"internal/validate",
		"internal/lint",
	}
	// Leaf utilities: no module-internal imports at all (radix is one
	// level up — it may use netx).
	leafDeny := []string{""} // the root package...
	for _, p := range []string{
		"internal/alloc", "internal/as2org", "internal/bgp", "internal/casestudy",
		"internal/cluster", "internal/delegated", "internal/diff", "internal/dsu",
		"internal/experiments", "internal/httpd", "internal/intern", "internal/leasing",
		"internal/lint", "internal/lpm", "internal/names", "internal/netx", "internal/obs",
		"internal/radix", "internal/report", "internal/retry", "internal/rpki",
		"internal/rtr", "internal/store", "internal/synth", "internal/validate",
		"internal/whois", "internal/whoisd",
	} {
		leafDeny = append(leafDeny, p)
	}

	layering := map[string][]string{
		// Root build package: below serving, never reaches up.
		"": servingAndAbove,
		// Corpus parsers and build stages: below serving and the
		// harnesses.
		"internal/whois":     servingAndAbove,
		"internal/bgp":       servingAndAbove,
		"internal/rpki":      servingAndAbove,
		"internal/as2org":    servingAndAbove,
		"internal/delegated": servingAndAbove,
		"internal/leasing":   servingAndAbove,
		"internal/names":     servingAndAbove,
		"internal/cluster":   servingAndAbove,
		"internal/synth":     servingAndAbove,
		"internal/radix":     servingAndAbove,
		"internal/diff":      servingAndAbove,
		// Leaf utilities import nothing module-internal.
		"internal/netx":   leafDeny,
		"internal/dsu":    leafDeny,
		"internal/report": leafDeny,
		"internal/retry":  leafDeny,
		"internal/alloc":  leafDeny,
		"internal/obs":    leafDeny,
		"internal/lpm":    leafDeny,
		"internal/intern": leafDeny,
		// The store is below the daemons and the harnesses.
		"internal/store": {"internal/whoisd", "internal/httpd", "internal/rtr", "internal/experiments", "internal/casestudy"},
		// The linter analyzes everything and depends on nothing.
		"internal/lint": leafDeny,
	}

	return &Config{
		BuildPath:  buildPath,
		CtxAllowed: nil, // only package main may use context.Background
		IOCtx:      ioCtx,
		Layering:   layering,
		Immutable: map[string][]string{
			// Dataset is assembled by the root build() and its Load
			// path, then frozen; store snapshots are frozen at Swap;
			// the LPM index is frozen at Freeze/Decode and shared by
			// every concurrent reader afterwards.
			modPath + ".Dataset":                 {""},
			modPath + "/internal/store.Snapshot": {"internal/store"},
			modPath + "/internal/lpm.Index":      {"internal/lpm"},
		},
		Obs: ObsConfig{
			RegistryType: modPath + "/internal/obs.Registry",
			LabelFunc:    modPath + "/internal/obs.Label",
			Methods:      []string{"Counter", "Gauge", "Histogram", "GaugeFunc"},
		},
		// Every handler that answers from snapshot data pins it via
		// Acquire; the pass holds each pin to a release on all exits.
		Pin: PinConfig{
			StoreType: modPath + "/internal/store.Store",
			Method:    "Acquire",
		},
		Unsafe: UnsafeConfig{
			// The only files allowed to alias raw memory: the snapshot
			// blob view (unsafe.String over file bytes) and the LPM
			// column views (unsafe.Slice over the mmap'd arrays).
			AllowUnsafe: []string{
				"snapview.go",
				"internal/lpm/view.go",
			},
			// syscall is confined to the mmap platform glue and the
			// daemon mains, which need the SIGHUP/SIGTERM constants for
			// reload/shutdown wiring (os/signal carries no such names).
			AllowSyscall: []string{
				"mmap_unix.go",
				"cmd/p2o-httpd/main.go",
				"cmd/p2o-rtrd/main.go",
				"cmd/p2o-synth/main.go",
				"cmd/p2o-whoisd/main.go",
			},
			// On a view-backed Dataset these accessors return records
			// whose strings alias the snapshot's buffer.
			AliasAccessors: map[string][]string{
				modPath + ".Dataset": {"RecordAt", "ClusterAt"},
			},
			// The root package implements the view and its
			// materialization caches.
			AliasExempt: []string{""},
		},
	}
}
