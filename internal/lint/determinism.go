package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismRule enforces the byte-determinism contract on build-path
// packages: identical inputs must produce identical output at any
// worker count (ARCHITECTURE.md, TestParallelBuildDeterminism). Three
// things break it silently:
//
//   - wall-clock reads (time.Now/Since/Until) leaking into records;
//   - the global math/rand source (seeded from runtime entropy);
//     explicitly seeded rand.New(rand.NewSource(n)) generators are
//     fine and the synthesizer depends on them;
//   - emitting output, or growing a slice that becomes output, in map
//     iteration order with no later sort.
func determinismRule(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		if !cfg.inList(cfg.BuildPath, p.RelPath) {
			continue
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				fn, ok := n.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					return true
				}
				out = append(out, checkFuncDeterminism(m, p, fn)...)
				return true
			})
		}
	}
	return out
}

func checkFuncDeterminism(m *Module, p *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	sortEnds := sortCallEnds(p.Info, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := nondeterministicCall(p.Info, n); what != "" {
				out = append(out, m.finding(n.Pos(), RuleDeterminism,
					fmt.Sprintf("%s in build-path package %s; output must be byte-identical across runs", what, p.RelName())))
			}
		case *ast.RangeStmt:
			out = append(out, checkMapRange(m, p, n, sortEnds)...)
		}
		return true
	})
	return out
}

// nondeterministicCall classifies a call as a determinism hazard.
func nondeterministicCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeOf(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		// Methods (e.g. (*rand.Rand).Intn on a seeded generator) are
		// deterministic; only package-level sources are flagged.
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			return "call to time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		switch f.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // constructing an explicitly seeded generator
		}
		return "call to the global " + f.Pkg().Path() + " source (rand." + f.Name() + ")"
	}
	return ""
}

// checkMapRange flags map-iteration-ordered output: a range over a map
// whose body either writes output directly (fmt.Print*/Fprint*, Write*
// methods) or appends to a slice declared outside the loop that is
// never sorted afterwards in the same function.
func checkMapRange(m *Module, p *Package, rs *ast.RangeStmt, sortEnds []token.Pos) []Finding {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := emitCall(p.Info, n); what != "" {
				out = append(out, m.finding(n.Pos(), RuleDeterminism,
					fmt.Sprintf("%s while ranging over a map in build-path package %s; iterate a sorted key slice instead", what, p.RelName())))
			}
		case *ast.AssignStmt:
			out = append(out, checkRangeAppend(m, p, rs, n, sortEnds)...)
		}
		return true
	})
	return out
}

// emitCall reports direct output calls: the fmt print family and Write*
// methods on builders, buffers, and writers.
func emitCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeOf(info, call)
	if f == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(f.Name(), "Print") || strings.HasPrefix(f.Name(), "Fprint")) {
			return "fmt." + f.Name() + " emits"
		}
		return ""
	}
	if strings.HasPrefix(f.Name(), "Write") {
		return f.Name() + " emits"
	}
	return ""
}

// checkRangeAppend flags `s = append(s, ...)` inside a map range when s
// is declared outside the loop and the enclosing function never sorts
// anything after the loop ends.
func checkRangeAppend(m *Module, p *Package, rs *ast.RangeStmt, as *ast.AssignStmt, sortEnds []token.Pos) []Finding {
	var out []Finding
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || !isAppend(p.Info, call) {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil || obj.Pos() >= rs.Pos() {
			continue // loop-local accumulator
		}
		sorted := false
		for _, end := range sortEnds {
			if end > rs.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			out = append(out, m.finding(as.Pos(), RuleDeterminism,
				fmt.Sprintf("appends to %q while ranging over a map with no later sort in build-path package %s; order depends on map iteration", id.Name, p.RelName())))
		}
	}
	return out
}

// sortCallEnds returns the end positions of every ordering call in the
// function body: anything in the sort package, and any function or
// method whose name mentions sorting (slices.SortFunc, netx.Sort, a
// local sortPrefixes helper).
func sortCallEnds(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var ends []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(info, call)
		if f == nil {
			return true
		}
		if (f.Pkg() != nil && f.Pkg().Path() == "sort") ||
			strings.Contains(strings.ToLower(f.Name()), "sort") {
			ends = append(ends, call.End())
		}
		return true
	})
	return ends
}
