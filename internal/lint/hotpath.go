package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathRule checks functions annotated //p2o:hotpath (in the doc
// comment) for allocation-introducing constructs. These are the
// functions the runtime alloc guards pin at zero allocations per call —
// the LPM lookup, the httpd bulk line, the whoisd answer, the telemetry
// fast paths; the static pass names the offending construct at the
// source line instead of leaving a bare "got 1 allocs, want 0".
//
// Flagged constructs, with the exemptions that keep the real hot paths
// clean:
//
//   - fmt.Sprintf / fmt.Errorf calls (always allocate);
//   - string ↔ []byte conversions of non-constant operands, unless fed
//     directly to an alias-safe sink the compiler optimizes (map index,
//     comparison, switch tag, len);
//   - closure literals capturing variables, unless passed directly as a
//     call argument outside a go statement (sort.Search-style literals
//     do not escape);
//   - interface boxing at call boundaries: a non-constant,
//     non-pointer-shaped, non-zero-size value passed to an interface
//     (including ...any) parameter;
//   - append on locals not preallocated via make or a reslice —
//     parameters and package-level buffers are the caller's business.
//
// The rule needs no config: it fires wherever the annotation appears.
// An unavoidable construct off the measured path takes a
// //p2olint:ignore hotpath-alloc with a reason.
func hotpathRule(m *Module, _ *Config) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !isHotpath(fn) {
					continue
				}
				out = append(out, hotpathFindings(m, p, fn)...)
			}
		}
	}
	return out
}

const hotpathAnnotation = "//p2o:hotpath"

// isHotpath reports whether the function's doc comment carries the
// //p2o:hotpath annotation (alone on its line, optionally followed by a
// note).
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathAnnotation || strings.HasPrefix(c.Text, hotpathAnnotation+" ") {
			return true
		}
	}
	return false
}

// HotpathFuncs lists every //p2o:hotpath-annotated function in the
// module as "pkg.Func" (methods as "pkg.Recv.Func"), sorted.
// TestRepoIsClean asserts over this so the annotation surface — and
// with it the rule's coverage — cannot silently erode.
func HotpathFuncs(m *Module) []string {
	var out []string
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !isHotpath(fn) {
					continue
				}
				name := fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) > 0 {
					if tn := recvTypeName(fn.Recv.List[0].Type); tn != "" {
						name = tn + "." + name
					}
				}
				out = append(out, p.RelName()+"."+name)
			}
		}
	}
	sort.Strings(out)
	return out
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return recvTypeName(x.X)
	}
	return ""
}

func hotpathFindings(m *Module, p *Package, fn *ast.FuncDecl) []Finding {
	var out []Finding
	params := paramObjects(p, fn)
	premade := premadeLocals(p, fn)
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			out = append(out, checkHotCall(m, p, n, params, premade, stack)...)
		case *ast.FuncLit:
			out = append(out, checkHotClosure(m, p, n, stack)...)
		}
	})
	return out
}

// paramObjects collects the function's parameters and receiver —
// buffers the caller owns, exempt from the append check.
func paramObjects(p *Package, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.Info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results) // named results are the caller's too
	return out
}

// premadeLocals collects locals initialized from make(...) or a reslice
// (buf[:0]) anywhere in the body — buffers with deliberate capacity.
func premadeLocals(p *Package, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[bid].(*types.Builtin); ok && b.Name() == "make" {
					if obj := p.Info.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
			}
		case *ast.SliceExpr:
			if obj := p.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func checkHotCall(m *Module, p *Package, call *ast.CallExpr, params, premade map[types.Object]bool, stack []ast.Node) []Finding {
	// A CallExpr that is really a type conversion.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return checkHotConversion(m, p, call, tv.Type, stack)
	}
	if isAppend(p.Info, call) {
		return checkHotAppend(m, p, call, params, premade)
	}
	f := calleeOf(p.Info, call)
	if f == nil {
		return nil
	}
	if pkgFunc(f, "fmt", "Sprintf") || pkgFunc(f, "fmt", "Errorf") {
		// The fmt finding subsumes the boxing of its variadic args.
		return []Finding{m.finding(call.Pos(), RuleHotpath, fmt.Sprintf(
			"fmt.%s allocates on a //p2o:hotpath function; append to a caller-supplied buffer instead", f.Name()))}
	}
	if sig, ok := f.Type().(*types.Signature); ok {
		if at := boxedArgType(p, call, sig); at != nil {
			return []Finding{m.finding(call.Pos(), RuleHotpath, fmt.Sprintf(
				"%s boxes %s into an interface parameter on a //p2o:hotpath function",
				f.Name(), types.TypeString(at, shortQualifier)))}
		}
	}
	return nil
}

func shortQualifier(pkg *types.Package) string { return pkg.Name() }

// checkHotConversion flags string↔[]byte conversions of non-constant
// operands whose result is not consumed by an alias-safe sink.
func checkHotConversion(m *Module, p *Package, call *ast.CallExpr, to types.Type, stack []ast.Node) []Finding {
	if len(call.Args) != 1 {
		return nil
	}
	atv, ok := p.Info.Types[call.Args[0]]
	if !ok || atv.Value != nil { // constant operands convert for free
		return nil
	}
	var dir string
	switch {
	case isStringType(to) && isByteSliceType(atv.Type):
		dir = "string([]byte)"
	case isByteSliceType(to) && isStringType(atv.Type):
		dir = "[]byte(string)"
	default:
		return nil
	}
	if aliasSafeSink(p, call, stack) {
		return nil
	}
	return []Finding{m.finding(call.Pos(), RuleHotpath, fmt.Sprintf(
		"%s conversion copies on a //p2o:hotpath function; feed an alias-safe sink (map index, comparison) or reuse a buffer", dir))}
}

// aliasSafeSink reports whether the conversion's immediate consumer is
// one the compiler optimizes to skip the copy: a map index, a
// comparison, a switch tag, or len.
func aliasSafeSink(p *Package, call *ast.CallExpr, stack []ast.Node) bool {
	switch parent := parentNode(stack).(type) {
	case *ast.BinaryExpr:
		switch parent.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	case *ast.IndexExpr:
		if ast.Unparen(parent.Index) == call {
			if tv, ok := p.Info.Types[parent.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
	case *ast.SwitchStmt:
		return ast.Unparen(parent.Tag) == call
	case *ast.CallExpr:
		if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
				return true
			}
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// boxedArgType returns the type of the first argument that boxes into
// an interface parameter, or nil. Constants, nils, values already of
// interface type, pointer-shaped values (pointers, channels, maps,
// funcs — stored in the interface word directly), and zero-size values
// (interned) do not allocate and pass.
func boxedArgType(p *Package, call *ast.CallExpr, sig *types.Signature) types.Type {
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // spread of a pre-built slice: no per-arg boxing
			}
			s, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Value != nil || tv.IsNil() || tv.Type == nil {
			continue
		}
		at := tv.Type
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if pointerShaped(at) || zeroSized(at) {
			continue
		}
		return at
	}
	return nil
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func zeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

// checkHotAppend flags append on locals without deliberate capacity.
func checkHotAppend(m *Module, p *Package, call *ast.CallExpr, params, premade map[types.Object]bool) []Finding {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil // appends to fields/elements: the owner sized them
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil || params[obj] || premade[obj] || isPkgLevelVar(p, obj) {
		return nil
	}
	return []Finding{m.finding(call.Pos(), RuleHotpath, fmt.Sprintf(
		"append grows %q, which is not preallocated, on a //p2o:hotpath function; size it with make(..., cap) or take it from the caller", id.Name))}
}

// checkHotClosure flags closure literals that capture variables, except
// literals passed straight into a call (outside a go statement) — those
// stay on the stack.
func checkHotClosure(m *Module, p *Package, lit *ast.FuncLit, stack []ast.Node) []Finding {
	captured := capturedVar(p, lit)
	if captured == "" {
		return nil
	}
	inGo := stackHasGo(stack)
	if !inGo {
		if call, ok := parentNode(stack).(*ast.CallExpr); ok {
			if ast.Unparen(call.Fun) == lit {
				return nil // immediately invoked
			}
			for _, a := range call.Args {
				if ast.Unparen(a) == lit {
					return nil // sort.Search-style direct argument
				}
			}
		}
	}
	msg := fmt.Sprintf("closure capturing %q allocates on a //p2o:hotpath function; hoist the state or pass it as a parameter", captured)
	if inGo {
		msg = fmt.Sprintf("closure capturing %q escapes to a goroutine from a //p2o:hotpath function", captured)
	}
	return []Finding{m.finding(lit.Pos(), RuleHotpath, msg)}
}

// capturedVar returns the name of the first variable the literal
// captures from its enclosing function, or "".
func capturedVar(p *Package, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		if p.Pkg != nil && v.Parent() == p.Pkg.Scope() {
			return true // package-level, not a capture
		}
		name = id.Name
		return false
	})
	return name
}
