package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// obsRule audits metric registration: every obs.Registry
// Counter/Gauge/Histogram call must name its instrument with a
// snake_case string constant — directly or through obs.Label(base,
// k, v, ...) — and a fully literal name must be registered at exactly
// one call site, so grepping a metric name from a dashboard lands on
// one line of code. Names assembled at runtime (label values computed
// per registry, say) keep the snake_case check on their literal base
// but are exempt from the single-site check.
func obsRule(m *Module, cfg *Config) []Finding {
	if cfg.Obs.RegistryType == "" {
		return nil
	}
	var out []Finding
	type site struct {
		pos  token.Pos
		file string
		line int
	}
	registered := map[string][]site{}
	for _, p := range m.Pkgs {
		inspectFiles(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeOf(p.Info, call)
			if !isRegistryMethod(f, &cfg.Obs) {
				return true
			}
			name, rendered, fullyLiteral, ok := metricName(p, call.Args[0], &cfg.Obs)
			if !ok {
				out = append(out, m.finding(call.Args[0].Pos(), RuleObs,
					fmt.Sprintf("metric name passed to %s must be a string literal (optionally via obs.Label)", f.Name())))
				return true
			}
			if !isSnake(name) {
				out = append(out, m.finding(call.Args[0].Pos(), RuleObs,
					fmt.Sprintf("metric name %q is not snake_case", name)))
			}
			if fullyLiteral {
				pos := m.Fset.Position(call.Pos())
				registered[rendered] = append(registered[rendered],
					site{pos: call.Pos(), file: pos.Filename, line: pos.Line})
			}
			return true
		})
	}
	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := registered[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, s := range sites[1:] {
			out = append(out, m.finding(s.pos, RuleObs,
				fmt.Sprintf("metric %q already registered at %s:%d; register once and share the instrument", name, sites[0].file, sites[0].line)))
		}
	}
	return out
}

func isRegistryMethod(f *types.Func, oc *ObsConfig) bool {
	if f == nil {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	if namedTypeOf(sig.Recv().Type()) != oc.RegistryType {
		return false
	}
	for _, meth := range oc.Methods {
		if f.Name() == meth {
			return true
		}
	}
	return false
}

// metricName extracts the base metric name from the first argument of
// a registration call. rendered is the full dedup key (base name plus
// literal labels); fullyLiteral is false when any part is computed at
// runtime.
func metricName(p *Package, arg ast.Expr, oc *ObsConfig) (name, rendered string, fullyLiteral, ok bool) {
	if s, isConst := constString(p.Info, arg); isConst {
		return s, s, true, true
	}
	call, isCall := ast.Unparen(arg).(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return "", "", false, false
	}
	f := calleeOf(p.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path()+"."+f.Name() != oc.LabelFunc {
		return "", "", false, false
	}
	base, isConst := constString(p.Info, call.Args[0])
	if !isConst {
		return "", "", false, false
	}
	rendered = base
	fullyLiteral = true
	for _, lv := range call.Args[1:] {
		s, isConst := constString(p.Info, lv)
		if !isConst {
			fullyLiteral = false
			break
		}
		rendered += "," + s
	}
	return base, rendered, fullyLiteral, true
}

// constString resolves an expression to its compile-time string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
