// Package lint implements p2o-lint, the repository's custom static
// analyzer. It machine-checks the contracts the compiler cannot see —
// the ones ARCHITECTURE.md states in prose:
//
//   - determinism: build-path packages must produce byte-identical
//     output at any worker count, so they may not consult wall-clock
//     time or the global math/rand source, and may not emit output (or
//     accumulate slices that become output) in map-iteration order;
//   - ctx-discipline: context.Background()/context.TODO() belong in
//     main-adjacent wiring only, and exported functions that perform
//     I/O must accept a context.Context as their first parameter;
//   - layering: the import DAG documented in ARCHITECTURE.md (corpus
//     parsers below the serving layer, leaf utilities below everything);
//   - immutability: Dataset and store.Snapshot are frozen once built —
//     only their owning packages may assign to their fields;
//   - obs-conventions: metric names are snake_case string literals,
//     each registered at a single call site;
//   - pin-release: every store.Acquire() pairs with a release on all
//     exits — deferred on the acquiring path or threaded onward
//     explicitly — and neither the pinned snapshot nor its release
//     func escapes into struct fields, globals, or goroutines;
//   - unsafe-confinement: unsafe and syscall imports are restricted to
//     the snapshot-view internals, and blob-aliasing accessor results
//     (RecordAt and friends) are never stored into long-lived sinks;
//   - hotpath-alloc: functions annotated //p2o:hotpath are free of
//     allocation-introducing constructs (fmt.Sprintf/Errorf,
//     string↔[]byte copies, escaping closures, interface boxing,
//     append on non-preallocated locals).
//
// The analyzer is built entirely on the standard library (go/parser,
// go/ast, go/types); it deliberately avoids golang.org/x/tools so it
// runs in offline builds. Findings print as "file:line: rule: message"
// and any finding makes cmd/p2o-lint exit non-zero.
//
// A finding can be suppressed with a directive comment on the same
// line or the line above:
//
//	//p2olint:ignore <rule> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation, addressed by module-root-relative file
// path and line.
type Finding struct {
	File string
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Msg)
}

// Rule names, as they appear in findings and ignore directives.
const (
	RuleDeterminism  = "determinism"
	RuleCtx          = "ctx-discipline"
	RuleLayering     = "layering"
	RuleImmutability = "immutability"
	RuleObs          = "obs-conventions"
	RulePin          = "pin-release"
	RuleUnsafe       = "unsafe-confinement"
	RuleHotpath      = "hotpath-alloc"
	RuleIgnore       = "ignore" // misuse of the ignore directive itself
)

// ObsConfig locates the metrics API the obs-conventions rule audits.
type ObsConfig struct {
	// RegistryType is the fully qualified registry type, e.g.
	// "example.com/mod/internal/obs.Registry".
	RegistryType string
	// LabelFunc is the fully qualified label-rendering helper whose
	// first argument is the base metric name.
	LabelFunc string
	// Methods are the Registry methods that register an instrument.
	Methods []string
}

// PinConfig locates the snapshot-pinning API the pin-release rule
// audits. A zero StoreType or Method disables the rule.
type PinConfig struct {
	// StoreType is the fully qualified store type, e.g.
	// "example.com/mod/internal/store.Store".
	StoreType string
	// Method is the pinning method on StoreType returning
	// (snapshot, release func).
	Method string
}

// UnsafeConfig confines raw-memory machinery for the unsafe-confinement
// rule. A fully zero config disables the rule; an empty-but-non-nil
// allowlist means "no file at all".
type UnsafeConfig struct {
	// AllowUnsafe lists module-relative files permitted to import
	// unsafe; AllowSyscall the same for syscall.
	AllowUnsafe  []string
	AllowSyscall []string
	// AliasAccessors maps a fully qualified type name to the methods
	// whose results alias a snapshot-backed buffer (blob views). Their
	// results must not be stored into long-lived sinks.
	AliasAccessors map[string][]string
	// AliasExempt lists packages (relative paths) that implement the
	// views themselves and may store aliases as they see fit.
	AliasExempt []string
}

// Config is the per-package rule table. Package identity is the import
// path relative to the module root ("" is the root package,
// "internal/whois" a subpackage), which keeps fixture modules and the
// real module configurable with the same table shape.
type Config struct {
	// BuildPath lists packages whose output must be byte-deterministic;
	// the determinism rule applies only here.
	BuildPath []string
	// CtxAllowed lists non-main packages where context.Background and
	// context.TODO are permitted. Package main and test files are
	// always exempt.
	CtxAllowed []string
	// IOCtx lists packages where exported functions that directly
	// perform read-side I/O (os.Open/ReadFile/ReadDir, net.Dial...)
	// must take a context.Context first parameter. Server starters
	// (net.Listen) are exempt by design: their lifetime is managed by
	// a returned closer, not a context.
	IOCtx []string
	// Layering maps a package to import prefixes it must not depend
	// on. An entry denies the exact package and everything under it.
	Layering map[string][]string
	// Immutable maps fully qualified type names ("pkgpath.Type") to
	// the packages (relative paths) allowed to assign to their fields,
	// elements, or map entries.
	Immutable map[string][]string
	// Obs configures the obs-conventions rule; a zero RegistryType
	// disables it.
	Obs ObsConfig
	// Pin configures the pin-release rule.
	Pin PinConfig
	// Unsafe configures the unsafe-confinement rule. The hotpath-alloc
	// rule needs no table: it triggers on //p2o:hotpath annotations.
	Unsafe UnsafeConfig
}

func (c *Config) inList(list []string, rel string) bool {
	for _, e := range list {
		if e == rel {
			return true
		}
	}
	return false
}

// Run applies every configured rule to the module and returns the
// surviving findings sorted by file, line, and rule. Ignore directives
// are honored here; a directive without a reason becomes a finding of
// its own.
func Run(m *Module, cfg *Config) []Finding {
	var fs []Finding
	fs = append(fs, determinismRule(m, cfg)...)
	fs = append(fs, ctxRule(m, cfg)...)
	fs = append(fs, layeringRule(m, cfg)...)
	fs = append(fs, immutabilityRule(m, cfg)...)
	fs = append(fs, obsRule(m, cfg)...)
	fs = append(fs, pinReleaseRule(m, cfg)...)
	fs = append(fs, unsafeConfineRule(m, cfg)...)
	fs = append(fs, hotpathRule(m, cfg)...)
	fs = applyIgnores(m, fs)
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Msg < fs[j].Msg
	})
	return fs
}

// finding builds a Finding from a token position.
func (m *Module) finding(pos token.Pos, rule, msg string) Finding {
	p := m.Fset.Position(pos)
	return Finding{File: p.Filename, Line: p.Line, Rule: rule, Msg: msg}
}

// ignoreDirective is one parsed //p2olint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rule   string
	reason string
	pos    token.Pos
}

const ignorePrefix = "//p2olint:ignore"

// parseIgnoreDirective parses one comment's text as an ignore
// directive. ok reports whether the comment is a directive at all: the
// exact //p2olint:ignore prefix followed by end-of-comment or
// whitespace (so //p2olint:ignorexyz is an ordinary comment). rule and
// reason may come back empty — applyIgnores turns those into findings
// rather than silently honoring a malformed directive.
func parseIgnoreDirective(comment string) (rule, reason string, ok bool) {
	rest, found := strings.CutPrefix(comment, ignorePrefix)
	if !found {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:]), true
	}
	return rest, "", true
}

// collectIgnores parses every ignore directive in the module.
func collectIgnores(m *Module) []ignoreDirective {
	var out []ignoreDirective
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rule, reason, ok := parseIgnoreDirective(c.Text)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					out = append(out, ignoreDirective{
						file: pos.Filename, line: pos.Line, pos: c.Pos(),
						rule: rule, reason: reason,
					})
				}
			}
		}
	}
	return out
}

// applyIgnores drops findings suppressed by a well-formed directive on
// the same line or the line above, and reports malformed directives.
func applyIgnores(m *Module, fs []Finding) []Finding {
	dirs := collectIgnores(m)
	suppressed := func(f Finding) bool {
		for _, d := range dirs {
			if d.file != f.File || d.rule != f.Rule || d.reason == "" {
				continue
			}
			if d.line == f.Line || d.line == f.Line-1 {
				return true
			}
		}
		return false
	}
	var out []Finding
	for _, f := range fs {
		if !suppressed(f) {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		switch {
		case d.rule == "":
			out = append(out, m.finding(d.pos, RuleIgnore,
				"ignore directive names no rule; use //p2olint:ignore <rule> <reason>"))
		case d.reason == "":
			out = append(out, m.finding(d.pos, RuleIgnore,
				fmt.Sprintf("ignore directive for %q has no reason; a justification is mandatory", d.rule)))
		}
	}
	return out
}

var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// isSnake reports whether s is a valid snake_case identifier.
func isSnake(s string) bool { return snakeRe.MatchString(s) }

// inspectFiles walks every file of the package.
func inspectFiles(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
