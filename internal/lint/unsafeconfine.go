package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unsafeConfineRule keeps the raw-memory machinery fenced in. Two
// checks:
//
//  1. Imports of unsafe and syscall are restricted to an explicit file
//     allowlist — the snapshot blob views (unsafe.String/Slice aliasing
//     file bytes) and the mmap platform glue. Anywhere else, an unsafe
//     import is a new aliasing surface the mapping-lifetime contract
//     does not cover.
//  2. Outside the view-implementing packages, results of blob-aliasing
//     accessors (the configured AliasAccessors methods) must not be
//     assigned into long-lived sinks: package-level variables or struct
//     fields. A cached *Record that aliases a snapshot's buffer turns
//     into a dangling read the moment the snapshot's last pin drops and
//     the mapping closes.
//
// The sink check is a direct-assignment heuristic over typed ASTs, the
// static complement of the runtime mapping-lifetime e2e test — escapes
// through intermediate locals are the e2e test's job.
func unsafeConfineRule(m *Module, cfg *Config) []Finding {
	uc := &cfg.Unsafe
	if uc.AllowUnsafe == nil && uc.AllowSyscall == nil && len(uc.AliasAccessors) == 0 {
		return nil
	}
	var out []Finding
	out = append(out, confinedImports(m, cfg)...)
	out = append(out, aliasSinks(m, cfg)...)
	return out
}

// confinedImports flags unsafe/syscall imports outside the allowlists.
func confinedImports(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			fname := m.Fset.Position(f.Pos()).Filename
			for _, imp := range f.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "unsafe":
					if !cfg.inList(cfg.Unsafe.AllowUnsafe, fname) {
						out = append(out, m.finding(imp.Pos(), RuleUnsafe,
							"import of unsafe outside the allowlist; blob-aliasing views are confined to the snapshot-view internals"))
					}
				case "syscall":
					if !cfg.inList(cfg.Unsafe.AllowSyscall, fname) {
						out = append(out, m.finding(imp.Pos(), RuleUnsafe,
							"import of syscall outside the allowlist; platform calls are confined to the mmap glue and daemon signal wiring"))
					}
				}
			}
		}
	}
	return out
}

// aliasSinks flags assignments that store a blob-aliasing accessor
// result into a long-lived sink.
func aliasSinks(m *Module, cfg *Config) []Finding {
	if len(cfg.Unsafe.AliasAccessors) == 0 {
		return nil
	}
	var out []Finding
	for _, p := range m.Pkgs {
		if p.Info == nil || cfg.inList(cfg.Unsafe.AliasExempt, p.RelPath) {
			continue
		}
		inspectFiles(p, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			// := introduces fresh locals — request-scoped by
			// construction; only plain assignments can reach
			// pre-existing long-lived storage.
			if !ok || as.Tok == token.DEFINE {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				acc := aliasAccessor(p, rhs, &cfg.Unsafe)
				if acc == "" {
					continue
				}
				if sink := longLivedSink(p, as.Lhs[i]); sink != "" {
					out = append(out, m.finding(as.Pos(), RuleUnsafe, fmt.Sprintf(
						"result of blob-aliasing %s stored in %s; views alias the snapshot buffer and must not outlive the request's pin", acc, sink)))
				}
			}
			return true
		})
	}
	return out
}

// aliasAccessor reports the "Type.Method" display name when e is a call
// to a configured blob-aliasing accessor, or "".
func aliasAccessor(p *Package, e ast.Expr, uc *UnsafeConfig) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	f := calleeOf(p.Info, call)
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	tn := namedTypeOf(sig.Recv().Type())
	for _, name := range uc.AliasAccessors[tn] {
		if name == f.Name() {
			short := tn
			if i := strings.LastIndex(tn, "/"); i >= 0 {
				short = tn[i+1:]
			}
			return short + "." + f.Name()
		}
	}
	return ""
}

// longLivedSink names the long-lived storage the LHS chain roots at —
// a package-level variable (possibly through map/slice elements) or a
// struct field — or "" for a plain local.
func longLivedSink(p *Package, e ast.Expr) string {
	sawField := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := p.Info.ObjectOf(id).(*types.PkgName); isPkg {
					return "a package-level variable"
				}
			}
			sawField = true
			e = x.X
		case *ast.Ident:
			if isPkgLevelVar(p, p.Info.ObjectOf(x)) {
				return "a package-level variable"
			}
			if sawField {
				return "a struct field"
			}
			return ""
		default:
			return ""
		}
	}
}
