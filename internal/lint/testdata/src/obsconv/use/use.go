// Package use exercises the obs-conventions rule.
package use

import "example.com/om/obs"

// Wire registers the fixture's metrics.
func Wire(r *obs.Registry, dynamic string) {
	r.Counter("build_total")                                  // ok
	r.Gauge("snapshot_age_seconds")                           // ok
	r.Counter("BuildTotal")                                   // want: not snake_case
	r.Counter("build-errors")                                 // want: not snake_case
	r.Histogram(obs.Label("stage_seconds", "stage", "whois")) // ok
	r.Counter(obs.Label("FlushCount", "rir", "ripe"))         // want: label base not snake_case
	r.Counter(dynamic)                                        // want: non-literal name
	r.Counter("build_total")                                  // want: duplicate registration
	r.GaugeFunc("queue_depth", func() float64 { return 0 })   // ok
	r.GaugeFunc("QueueDepth", func() float64 { return 0 })    // want: not snake_case
	r.GaugeFunc(dynamic, func() float64 { return 0 })         // want: non-literal name
}
