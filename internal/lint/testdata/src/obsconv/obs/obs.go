// Package obs mirrors the real module's metrics registry shape.
package obs

import "strings"

// Registry hands out named metrics.
type Registry struct{}

// Counter returns a monotonically increasing metric.
func (r *Registry) Counter(name string) *int { _ = name; return new(int) }

// Gauge returns a point-in-time metric.
func (r *Registry) Gauge(name string) *int { _ = name; return new(int) }

// Histogram returns a distribution metric.
func (r *Registry) Histogram(name string) *int { _ = name; return new(int) }

// GaugeFunc registers a scrape-time computed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) { _, _ = name, fn }

// Label renders a metric name with key=value labels appended.
func Label(name string, kv ...string) string {
	return name + "," + strings.Join(kv, ",")
}
