module example.com/om

go 1.22
