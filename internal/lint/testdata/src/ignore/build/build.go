// Package build exercises the p2olint:ignore directive.
package build

import "time"

// Deadline's clock read is suppressed with a reason — no finding.
func Deadline() time.Time {
	//p2olint:ignore determinism deadline on a live session, never serialized
	return time.Now()
}

// Bare's directive has no reason: it suppresses nothing, so both the
// malformed directive and the clock read are reported.
func Bare() time.Time {
	//p2olint:ignore determinism
	return time.Now() // want: time.Now survives
}

// Mismatched suppresses the wrong rule, so the finding survives.
func Mismatched() time.Time {
	//p2olint:ignore ctx-discipline wrong rule named here
	return time.Now() // want: time.Now (directive names another rule)
}

// Empty carries a directive that names no rule at all.
func Empty() int {
	//p2olint:ignore
	return 0
}
