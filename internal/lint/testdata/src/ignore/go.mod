module example.com/ign

go 1.22
