// Package parser sits below the serving layer and must not reach up.
package parser

import (
	"example.com/layer/store" // want: layering violation
	"example.com/layer/util"
)

// Parse depends upward on store — the violation under test.
func Parse(s string) int {
	return util.Double(len(s)) + store.Current()
}
