// Package util is a leaf: it may import nothing module-internal.
package util

// Double is a pure helper.
func Double(n int) int { return 2 * n }
