module example.com/layer

go 1.22
