// Package store is the fixture's serving layer.
package store

// Current returns the served value.
func Current() int { return 42 }
