// Package build is a fixture on the determinism rule's build path.
package build

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp leaks wall-clock time into output.
func Stamp() string {
	return time.Now().String() // want: time.Now
}

// Age leaks an elapsed duration.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want: time.Since
}

// Pick uses the globally seeded source.
func Pick(n int) int {
	return rand.Intn(n) // want: global rand
}

// Seeded uses an explicitly seeded generator — allowed.
func Seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Emit prints in map iteration order.
func Emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want: fmt.Fprintf in map range
	}
}

// Collect appends in map order and never sorts.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want: append without sort
	}
	return out
}

// CollectSorted appends in map order but sorts before returning — allowed.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CollectLocal accumulates into a loop-local slice — allowed (the outer
// slice heuristic must not fire).
func CollectLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
