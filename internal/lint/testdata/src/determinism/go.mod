module example.com/det

go 1.22
