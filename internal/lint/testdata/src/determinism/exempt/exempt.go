// Package exempt is outside the build path: wall-clock reads are fine.
package exempt

import "time"

// Uptime may use the clock freely.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
