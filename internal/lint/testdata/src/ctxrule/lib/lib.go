// Package lib is a fixture for the ctx-discipline rule.
package lib

import (
	"context"
	"os"
)

// Orphan manufactures a root context outside main wiring.
func Orphan() context.Context {
	return context.Background() // want: context.Background
}

// Someday uses the placeholder context.
func Someday() context.Context {
	return context.TODO() // want: context.TODO
}

// ReadAll does I/O without accepting a context.
func ReadAll(path string) ([]byte, error) { // want: I/O without ctx
	return os.ReadFile(path)
}

// ReadAllCtx does I/O and accepts a context — allowed.
func ReadAllCtx(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// helper is unexported: the I/O-ctx contract binds the public API only.
func helper(path string) ([]byte, error) {
	return os.ReadFile(path)
}
