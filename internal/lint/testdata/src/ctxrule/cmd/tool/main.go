// Command tool is main-adjacent wiring: context.Background is allowed.
package main

import (
	"context"
	"fmt"

	"example.com/ctxfix/lib"
)

func main() {
	ctx := context.Background()
	data, err := lib.ReadAllCtx(ctx, "/dev/null")
	fmt.Println(len(data), err)
}
