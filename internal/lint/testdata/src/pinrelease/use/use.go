// Package use exercises the pin-release rule: clean handler shapes,
// leaked pins, and escapes of the pin or its release func.
package use

import "example.com/pinrelease/store"

// Deferred is clean: an immediate defer covers every exit.
func Deferred(st *store.Store) int {
	snap, release := st.Acquire()
	defer release()
	if snap == nil {
		return 0
	}
	return snap.V
}

// DeferredClosure is clean: the release runs inside an immediately
// deferred cleanup closure.
func DeferredClosure(st *store.Store) int {
	snap, release := st.Acquire()
	defer func() {
		release()
	}()
	return snap.V
}

// Explicit is clean: a single path with the release before the return.
func Explicit(st *store.Store) int {
	snap, release := st.Acquire()
	v := snap.V
	release()
	return v
}

// Discarded leaks: the release func is thrown away.
func Discarded(st *store.Store) int {
	snap, _ := st.Acquire()
	return snap.V
}

// Dropped leaks: the Acquire result is not captured at all.
func Dropped(st *store.Store) {
	st.Acquire()
}

// LateDefer leaks on the early return: the defer is installed after an
// exit that skips it.
func LateDefer(st *store.Store) int {
	snap, release := st.Acquire()
	if snap == nil {
		return 0
	}
	defer release()
	return snap.V
}

// LeakyPath leaks on the first return: only the second path releases.
func LeakyPath(st *store.Store) int {
	snap, release := st.Acquire()
	if snap.V > 0 {
		return snap.V
	}
	release()
	return 0
}

// NeverReleased leaks outright: the release func is never invoked.
func NeverReleased(st *store.Store) int {
	snap, release := st.Acquire()
	_ = release
	return snap.V
}

// holder outlives any single request.
type holder struct {
	snap    *store.Snapshot
	release func()
}

// Escapes moves both the pinned snapshot and its release func into a
// struct that outlives the call: two findings.
func Escapes(st *store.Store, h *holder) {
	snap, release := st.Acquire()
	h.snap = snap
	h.release = release
}

// Goroutine hands the release to a goroutine: the pin's lifetime is no
// longer tied to the acquiring path.
func Goroutine(st *store.Store) {
	_, release := st.Acquire()
	go func() {
		release()
	}()
}

// closer collects shutdown work; threading a release into it is the
// sanctioned handoff shape.
type closer struct{ fns []func() }

func (c *closer) add(f func()) { c.fns = append(c.fns, f) }

// Threaded is clean: the release is passed into a call that owns the
// shutdown from here on.
func Threaded(st *store.Store, c *closer) {
	_, release := st.Acquire()
	c.add(release)
}

// Annotated stores the release into a struct field — normally an
// escape — with the documented ignore escape hatch.
func Annotated(st *store.Store, h *holder) {
	_, release := st.Acquire()
	//p2olint:ignore pin-release release is threaded into the holder's Close, which the caller always runs
	h.release = release
}
