module example.com/pinrelease

go 1.22
