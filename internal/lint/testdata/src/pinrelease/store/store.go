// Package store is the fixture stand-in for the snapshot store: just
// enough surface for the pin-release rule to latch onto.
package store

// Snapshot is a refcounted view of the served data.
type Snapshot struct{ V int }

// Store publishes the current snapshot.
type Store struct{ cur *Snapshot }

// Acquire pins the current snapshot and returns its release func.
func (s *Store) Acquire() (*Snapshot, func()) { return s.cur, func() {} }
