module example.com/immut

go 1.22
