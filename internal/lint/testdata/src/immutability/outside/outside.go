// Package outside consumes the frozen types and must not write to them.
package outside

import "example.com/immut/core"

// Tamper mutates a dataset it does not own.
func Tamper(d *core.Dataset, s *core.Snapshot) {
	d.Count = 7             // want: field assignment
	d.Index["k"] = 1        // want: map entry assignment
	d.Records[0].Name = "x" // want: element field assignment
	d.Count++               // want: increment
	s.Version = 2           // want: snapshot field assignment
}

// Observe only reads — allowed, including through local copies.
func Observe(d *core.Dataset) int {
	total := 0
	for _, r := range d.Records {
		total += r.Count
	}
	copyOf := d.Records[0]
	copyOf.Count = 99 // a detached value copy is not the frozen dataset
	return total + copyOf.Count
}
