// Package core owns the frozen types; it may mutate them during build.
package core

// Record is one row of the dataset.
type Record struct {
	Name  string
	Count int
}

// Dataset is immutable once built.
type Dataset struct {
	Records []Record
	Index   map[string]int
	Count   int
}

// Snapshot is immutable once published.
type Snapshot struct {
	Version int
	Data    *Dataset
}

// Build assembles a dataset; in-package mutation is allowed.
func Build(names []string) *Dataset {
	d := &Dataset{Index: map[string]int{}}
	for i, n := range names {
		d.Records = append(d.Records, Record{Name: n})
		d.Index[n] = i
		d.Count++
	}
	return d
}
