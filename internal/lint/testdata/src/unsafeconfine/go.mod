module example.com/unsafeconfine

go 1.22
