// Package view is the fixture's allowlisted blob-view internal: the
// one place unsafe may live, and the package exempt from the
// alias-sink check.
package view

import "unsafe"

// Str aliases b as a string without copying — the snapview idiom.
func Str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Data is the fixture dataset; RecordAt results alias its blob.
type Data struct{ blob []byte }

// RecordAt returns a string view aliasing the blob at offset i.
func (d *Data) RecordAt(i int) string { return Str(d.blob[i:]) }
