// Package bad violates the confinement: unsafe and syscall imports
// outside the allowlist, and blob-aliasing accessor results stored in
// long-lived sinks.
package bad

import (
	"syscall"
	"unsafe"

	"example.com/unsafeconfine/view"
)

var cached string

var table = map[int]string{}

type server struct{ last string }

// Pointer launders a raw pointer outside the view internals.
func Pointer(p *int) unsafe.Pointer { return unsafe.Pointer(p) }

// Pid has no business importing syscall for this.
func Pid() int { return syscall.Getpid() }

// Cache stores blob-aliasing strings into long-lived sinks: a package
// variable, a package-level map, a struct field. The local is fine.
func Cache(d *view.Data, s *server) string {
	cached = d.RecordAt(0)
	table[1] = d.RecordAt(1)
	s.last = d.RecordAt(2)
	local := d.RecordAt(3)
	return local
}

// Annotated demonstrates the escape hatch for a deliberate cache.
func Annotated(d *view.Data) {
	//p2olint:ignore unsafe-confinement the cache is invalidated on every snapshot swap by Reset
	cached = d.RecordAt(4)
}
