// Package hot exercises the hotpath-alloc rule: each marked function
// pairs an allocating shape with the alias-safe or preallocated
// alternative the rule accepts.
package hot

import (
	"fmt"
	"sort"
)

var sink func() int

var sinkInt int

// Sprintf formats on a hot path.
//
//p2o:hotpath
func Sprintf(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Convert copies b into a string; the map index on the same bytes is
// alias-safe and stays clean.
//
//p2o:hotpath
func Convert(b []byte, m map[string]int) (string, int) {
	s := string(b)
	return s, m[string(b)]
}

// Compare only converts inside comparisons: clean.
//
//p2o:hotpath
func Compare(a []byte, s string) bool {
	return string(a) == s
}

// Closure passes one literal straight into sort.Search (clean) and
// stores another into a package var (flagged capture).
//
//p2o:hotpath
func Closure(xs []int, target int) int {
	i := sort.Search(len(xs), func(j int) bool { return xs[j] >= target })
	f := func() int { return target }
	sink = f
	return i
}

func discard(v any) { _ = v }

// Box passes an int to an interface parameter (boxes); the error value
// is already an interface and stays clean.
//
//p2o:hotpath
func Box(n int, err error) {
	discard(n)
	discard(err)
}

// Append grows a fresh local (flagged); the preallocated buffer and
// the caller-supplied parameter slice are clean.
//
//p2o:hotpath
func Append(xs []int, n int) []int {
	var out []int
	out = append(out, n)
	pre := make([]int, 0, len(xs))
	pre = append(pre, xs...)
	xs = append(xs, n)
	_ = pre
	_ = xs
	return out
}

// Spawn launches a capturing goroutine from a hot path: flagged.
//
//p2o:hotpath
func Spawn(n int) {
	go func() {
		sinkInt = n
	}()
}

// NotMarked allocates freely; without the annotation nothing fires.
func NotMarked(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Ignored demonstrates the escape hatch on a marked function.
//
//p2o:hotpath
func Ignored(n int) string {
	//p2olint:ignore hotpath-alloc fixture demonstrates the escape hatch
	return fmt.Sprintf("n=%d", n)
}
