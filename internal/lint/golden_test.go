package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current findings")

// fixtureConfig returns the rule table for one testdata fixture. Each
// fixture is a tiny self-contained module exercising one rule, loaded
// through LoadModule exactly like the real repository.
func fixtureConfig(fixture, modPath string) *Config {
	switch fixture {
	case "determinism", "ignore":
		return &Config{BuildPath: []string{"build"}}
	case "ctxrule":
		return &Config{IOCtx: []string{"lib"}}
	case "layering":
		return &Config{Layering: map[string][]string{
			"parser": {"store"},
			"util":   {"parser", "store"},
		}}
	case "immutability":
		return &Config{Immutable: map[string][]string{
			modPath + "/core.Dataset":  {"core"},
			modPath + "/core.Snapshot": {"core"},
		}}
	case "obsconv":
		return &Config{Obs: ObsConfig{
			RegistryType: modPath + "/obs.Registry",
			LabelFunc:    modPath + "/obs.Label",
			Methods:      []string{"Counter", "Gauge", "Histogram", "GaugeFunc"},
		}}
	}
	return &Config{}
}

func TestGoldenFixtures(t *testing.T) {
	fixtures, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		if !fx.IsDir() {
			continue
		}
		name := fx.Name()
		t.Run(name, func(t *testing.T) {
			m, err := LoadModule(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatalf("LoadModule: %v", err)
			}
			for _, p := range m.Pkgs {
				for _, te := range p.TypeErrors {
					t.Errorf("fixture type error in %s: %v", p.RelName(), te)
				}
			}
			findings := Run(m, fixtureConfig(name, m.Path))
			var b strings.Builder
			for _, f := range findings {
				b.WriteString(f.String())
				b.WriteString("\n")
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestFindingsSorted pins the output ordering contract: findings come
// back sorted by file, then line, then rule, so golden files and CI
// logs are stable across runs.
func TestFindingsSorted(t *testing.T) {
	m, err := LoadModule(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, fixtureConfig("determinism", m.Path))
	if len(findings) < 2 {
		t.Fatalf("expected multiple findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %q before %q", a, b)
		}
	}
}

// TestRepoIsClean runs the full default rule table over the repository
// itself — the same invocation `make lint` performs. The real module
// must produce zero findings; any new violation fails this test (and
// therefore `make verify`) before it fails CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings := Run(m, DefaultConfig(m.Path))
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}
}
