package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current findings")

// fixtureConfig returns the rule table for one testdata fixture. Each
// fixture is a tiny self-contained module exercising one rule, loaded
// through LoadModule exactly like the real repository.
func fixtureConfig(fixture, modPath string) *Config {
	switch fixture {
	case "determinism", "ignore":
		return &Config{BuildPath: []string{"build"}}
	case "ctxrule":
		return &Config{IOCtx: []string{"lib"}}
	case "layering":
		return &Config{Layering: map[string][]string{
			"parser": {"store"},
			"util":   {"parser", "store"},
		}}
	case "immutability":
		return &Config{Immutable: map[string][]string{
			modPath + "/core.Dataset":  {"core"},
			modPath + "/core.Snapshot": {"core"},
		}}
	case "obsconv":
		return &Config{Obs: ObsConfig{
			RegistryType: modPath + "/obs.Registry",
			LabelFunc:    modPath + "/obs.Label",
			Methods:      []string{"Counter", "Gauge", "Histogram", "GaugeFunc"},
		}}
	case "pinrelease":
		return &Config{Pin: PinConfig{
			StoreType: modPath + "/store.Store",
			Method:    "Acquire",
		}}
	case "unsafeconfine":
		return &Config{Unsafe: UnsafeConfig{
			AllowUnsafe:  []string{"view/view.go"},
			AllowSyscall: []string{"view/view.go"},
			AliasAccessors: map[string][]string{
				modPath + "/view.Data": {"RecordAt"},
			},
			AliasExempt: []string{"view"},
		}}
	case "hotpath":
		return &Config{}
	}
	return &Config{}
}

func TestGoldenFixtures(t *testing.T) {
	fixtures, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		if !fx.IsDir() {
			continue
		}
		name := fx.Name()
		t.Run(name, func(t *testing.T) {
			m, err := LoadModule(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatalf("LoadModule: %v", err)
			}
			for _, p := range m.Pkgs {
				for _, te := range p.TypeErrors {
					t.Errorf("fixture type error in %s: %v", p.RelName(), te)
				}
			}
			findings := Run(m, fixtureConfig(name, m.Path))
			var b strings.Builder
			for _, f := range findings {
				b.WriteString(f.String())
				b.WriteString("\n")
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestFindingsSorted pins the output ordering contract: findings come
// back sorted by file, then line, then rule, so golden files and CI
// logs are stable across runs.
func TestFindingsSorted(t *testing.T) {
	m, err := LoadModule(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, fixtureConfig("determinism", m.Path))
	if len(findings) < 2 {
		t.Fatalf("expected multiple findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %q before %q", a, b)
		}
	}
}

// TestRunDeterministic pins the byte-for-byte determinism contract:
// the full suite run twice over the same module — and over a freshly
// reloaded module — renders identical findings output.
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every fixture twice; skipped in -short")
	}
	render := func(fs []Finding) string {
		var b strings.Builder
		for _, f := range fs {
			b.WriteString(f.String())
			b.WriteString("\n")
		}
		return b.String()
	}
	fixtures, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		if !fx.IsDir() {
			continue
		}
		name := fx.Name()
		t.Run(name, func(t *testing.T) {
			m, err := LoadModule(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatalf("LoadModule: %v", err)
			}
			cfg := fixtureConfig(name, m.Path)
			first := render(Run(m, cfg))
			second := render(Run(m, cfg))
			if first != second {
				t.Errorf("same-module reruns differ\n--- first ---\n%s--- second ---\n%s", first, second)
			}
		})
	}
	// A fresh load must also reproduce the same bytes: positions and
	// package iteration order may not depend on load-time state.
	t.Run("reload", func(t *testing.T) {
		m1, err := LoadModule(filepath.Join("testdata", "src", "pinrelease"))
		if err != nil {
			t.Fatal(err)
		}
		m2, err := LoadModule(filepath.Join("testdata", "src", "pinrelease"))
		if err != nil {
			t.Fatal(err)
		}
		out1 := render(Run(m1, fixtureConfig("pinrelease", m1.Path)))
		out2 := render(Run(m2, fixtureConfig("pinrelease", m2.Path)))
		if out1 == "" {
			t.Fatal("pinrelease fixture produced no findings")
		}
		if out1 != out2 {
			t.Errorf("reload reruns differ\n--- first ---\n%s--- second ---\n%s", out1, out2)
		}
	})
}

// TestRepoIsClean runs the full default rule table over the repository
// itself — the same invocation `make lint` performs. The real module
// must produce zero findings; any new violation fails this test (and
// therefore `make verify`) before it fails CI. It also pins the
// //p2o:hotpath coverage: the serve-path entry points must stay
// annotated so hotpath-alloc keeps watching them.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings := Run(m, DefaultConfig(m.Path))
	for _, f := range findings {
		t.Errorf("repo finding: %s", f)
	}

	hot := HotpathFuncs(m)
	if len(hot) < 10 {
		t.Errorf("expected at least 10 //p2o:hotpath functions, got %d: %v", len(hot), hot)
	}
	marked := make(map[string]bool, len(hot))
	for _, name := range hot {
		marked[name] = true
	}
	for _, want := range []string{
		"internal/lpm.Index.Lookup",
		"internal/httpd.appendBulkLine",
		"internal/whoisd.Server.answer",
		"internal/obs.QueryTelemetry.Finish",
		"(root).Dataset.LookupAddr",
	} {
		if !marked[want] {
			t.Errorf("serve-path function %s lost its //p2o:hotpath annotation", want)
		}
	}
}
