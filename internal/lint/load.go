package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path; RelPath is the path relative
	// to the module root ("" for the root package).
	ImportPath string
	RelPath    string
	Dir        string
	Files      []*ast.File
	// Main reports a package main (command wiring).
	Main bool
	// Pkg and Info are the go/types results. Type checking is
	// best-effort: on errors the rules run over whatever resolved, and
	// the errors are kept for -v diagnostics.
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error
}

// RelName is the package's display name in findings.
func (p *Package) RelName() string {
	if p.RelPath == "" {
		return "(root)"
	}
	return p.RelPath
}

// Module is a fully parsed and type-checked module.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute root directory
	Fset *token.FileSet
	// Pkgs is in dependency (topological) order.
	Pkgs   []*Package
	byPath map[string]*Package
}

// LoadModule discovers, parses, and type-checks every non-test package
// under root (skipping testdata, vendor, and hidden directories) the
// same way for the real module and for fixture modules. Standard
// library dependencies are type-checked from $GOROOT source via the
// stdlib "source" importer, so no export data, network access, or
// x/tools dependency is needed.
func LoadModule(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	// The source importer resolves stdlib packages through go/build;
	// with cgo off it picks the pure-Go variants (net, os/user), which
	// type-check without invoking the cgo tool.
	build.Default.CgoEnabled = false

	m := &Module{Path: modPath, Root: absRoot, Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	raw, err := m.parseTree()
	if err != nil {
		return nil, err
	}
	order, err := toposort(raw)
	if err != nil {
		return nil, err
	}
	std := importer.ForCompiler(m.Fset, "source", nil)
	imp := &moduleImporter{std: std, mod: map[string]*types.Package{}}
	for _, rp := range order {
		p := &Package{
			ImportPath: rp.importPath,
			RelPath:    rp.rel,
			Dir:        rp.dir,
			Files:      rp.files,
			Main:       rp.name == "main",
			Info: &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
			},
		}
		conf := types.Config{
			Importer:                 imp,
			Error:                    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
			DisableUnusedImportCheck: true,
		}
		tpkg, _ := conf.Check(rp.importPath, m.Fset, rp.files, p.Info)
		p.Pkg = tpkg
		if tpkg != nil {
			imp.mod[rp.importPath] = tpkg
		}
		m.Pkgs = append(m.Pkgs, p)
		m.byPath[rp.importPath] = p
	}
	return m, nil
}

// Rel converts a module-internal import path to its relative form, and
// reports whether the path is inside the module at all.
func (m *Module) Rel(importPath string) (string, bool) {
	if importPath == m.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, m.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// modulePath extracts the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// rawPkg is a parsed-but-not-yet-type-checked package directory.
type rawPkg struct {
	rel        string
	importPath string
	dir        string
	name       string
	files      []*ast.File
	deps       []string // module-internal import paths
}

// parseTree walks the module and parses every non-test Go file,
// grouping files by directory. File positions are recorded relative to
// the module root so findings print stable, clickable paths.
func (m *Module) parseTree() (map[string]*rawPkg, error) {
	raw := map[string]*rawPkg{}
	err := filepath.WalkDir(m.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return fs.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		relFile, err := filepath.Rel(m.Root, path)
		if err != nil {
			return err
		}
		relFile = filepath.ToSlash(relFile)
		file, err := parser.ParseFile(m.Fset, relFile, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", relFile, err)
		}
		relDir := filepath.ToSlash(filepath.Dir(relFile))
		if relDir == "." {
			relDir = ""
		}
		rp := raw[relDir]
		if rp == nil {
			ip := m.Path
			if relDir != "" {
				ip = m.Path + "/" + relDir
			}
			rp = &rawPkg{rel: relDir, importPath: ip, dir: filepath.Dir(path), name: file.Name.Name}
			raw[relDir] = rp
		}
		if file.Name.Name != rp.name {
			return fmt.Errorf("lint: %s: mixed package names %q and %q", relDir, rp.name, file.Name.Name)
		}
		rp.files = append(rp.files, file)
		for _, imp := range file.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if _, ok := m.Rel(ip); ok {
				rp.deps = append(rp.deps, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", m.Root)
	}
	// Deterministic file order inside each package.
	for _, rp := range raw {
		sort.Slice(rp.files, func(i, j int) bool {
			return m.Fset.Position(rp.files[i].Pos()).Filename < m.Fset.Position(rp.files[j].Pos()).Filename
		})
	}
	return raw, nil
}

// toposort orders packages so that every dependency is type-checked
// before its importers.
func toposort(raw map[string]*rawPkg) ([]*rawPkg, error) {
	byImport := map[string]*rawPkg{}
	rels := make([]string, 0, len(raw))
	for rel, rp := range raw {
		byImport[rp.importPath] = rp
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var order []*rawPkg
	var visit func(rp *rawPkg, chain []string) error
	visit = func(rp *rawPkg, chain []string) error {
		switch state[rp.importPath] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, rp.importPath), " -> "))
		}
		state[rp.importPath] = gray
		deps := append([]string(nil), rp.deps...)
		sort.Strings(deps)
		for _, dep := range deps {
			if next, ok := byImport[dep]; ok {
				if err := visit(next, append(chain, rp.importPath)); err != nil {
					return err
				}
			}
		}
		state[rp.importPath] = black
		order = append(order, rp)
		return nil
	}
	for _, rel := range rels {
		if err := visit(raw[rel], nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves already-checked module packages and delegates
// everything else (the standard library) to the source importer.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.mod[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := mi.mod[path]; ok {
		return p, nil
	}
	if from, ok := mi.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return mi.std.Import(path)
}
