package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ctxRule enforces context discipline:
//
//   - context.Background()/context.TODO() may appear only in package
//     main (cmd wiring, examples) and packages explicitly allowed by
//     the table — everywhere else a context must be threaded from the
//     caller so cancellation propagates through the whole pipeline;
//   - in the packages listed in Config.IOCtx, an exported function
//     that directly performs read-side I/O (opening files, dialing)
//     must accept a context.Context as its first parameter.
func ctxRule(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		if !p.Main && !cfg.inList(cfg.CtxAllowed, p.RelPath) {
			out = append(out, ctxBackgroundFindings(m, p)...)
		}
		if cfg.inList(cfg.IOCtx, p.RelPath) {
			out = append(out, ioCtxFindings(m, p)...)
		}
	}
	return out
}

func ctxBackgroundFindings(m *Module, p *Package) []Finding {
	var out []Finding
	inspectFiles(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(p.Info, call)
		if pkgFunc(f, "context", "Background") || pkgFunc(f, "context", "TODO") {
			out = append(out, m.finding(call.Pos(), RuleCtx,
				fmt.Sprintf("context.%s in package %s; thread a context.Context from the caller instead", f.Name(), p.RelName())))
		}
		return true
	})
	return out
}

// ioFuncs are the read-side entry points whose presence in an exported
// function's body demands a ctx parameter. Server starters
// (net.Listen) are deliberately absent: their lifetime is managed by a
// returned closer.
var ioFuncs = map[string]bool{
	"os.Open":         true,
	"os.OpenFile":     true,
	"os.ReadFile":     true,
	"os.ReadDir":      true,
	"net.Dial":        true,
	"net.DialTimeout": true,
}

func ioCtxFindings(m *Module, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			def, _ := p.Info.Defs[fn.Name].(*types.Func)
			if def == nil {
				continue
			}
			sig, _ := def.Type().(*types.Signature)
			if firstParamIsContext(sig) {
				continue
			}
			if io := firstIOCall(p, fn); io != "" {
				out = append(out, m.finding(fn.Pos(), RuleCtx,
					fmt.Sprintf("exported %s performs I/O (%s) but does not take a context.Context first parameter", fn.Name.Name, io)))
			}
		}
	}
	return out
}

func firstIOCall(p *Package, fn *ast.FuncDecl) string {
	found := ""
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeOf(p.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if sig, _ := f.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
			return true
		}
		if name := f.Pkg().Path() + "." + f.Name(); ioFuncs[name] {
			found = name
		}
		return true
	})
	return found
}
