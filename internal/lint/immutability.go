package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// immutabilityRule enforces the freeze contracts: Dataset and
// store.Snapshot are immutable once built — readers answer from them
// lock-free, so any out-of-package assignment to their fields,
// elements, or map entries is a data race waiting for a reader. Only
// the packages listed in the table (the builder and the store
// constructors) may write.
//
// The check is syntactic over typed ASTs: an assignment or ++/--
// whose left-hand side chains down (selectors, indexes, derefs) to an
// expression of a protected type is flagged. Escapes through extracted
// pointers (p := &ds.Records[i]; p.X = y) are out of scope and caught
// by -race instead.
func immutabilityRule(m *Module, cfg *Config) []Finding {
	if len(cfg.Immutable) == 0 {
		return nil
	}
	var out []Finding
	for _, p := range m.Pkgs {
		out = append(out, immutFindings(m, p, cfg)...)
	}
	return out
}

func immutFindings(m *Module, p *Package, cfg *Config) []Finding {
	var out []Finding
	flag := func(e ast.Expr, op string) {
		tn := protectedRoot(p, e, cfg)
		if tn == "" {
			return
		}
		short := tn
		if i := strings.LastIndex(tn, "/"); i >= 0 {
			short = tn[i+1:]
		}
		out = append(out, m.finding(e.Pos(), RuleImmutability,
			fmt.Sprintf("%s mutates immutable %s from package %s; snapshots are frozen after build", op, short, p.RelName())))
	}
	inspectFiles(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" {
				return true
			}
			for _, lhs := range n.Lhs {
				flag(lhs, "assignment")
			}
		case *ast.IncDecStmt:
			flag(n.X, n.Tok.String())
		case *ast.UnaryExpr:
			// taking the address of a field is fine (reads via pointer)
			return true
		}
		return true
	})
	return out
}

// protectedRoot walks the LHS expression chain looking for a protected
// type that this package is not allowed to mutate; it returns the
// qualified type name, or "".
func protectedRoot(p *Package, e ast.Expr, cfg *Config) string {
	check := func(x ast.Expr) string {
		tv, ok := p.Info.Types[x]
		if !ok {
			return ""
		}
		tn := derefNamed(tv.Type)
		if tn == "" {
			return ""
		}
		allowed, protected := cfg.Immutable[tn]
		if !protected || cfg.inList(allowed, p.RelPath) {
			return ""
		}
		return tn
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if tn := check(x.X); tn != "" {
				return tn
			}
			e = x.X
		case *ast.IndexExpr:
			if tn := check(x.X); tn != "" {
				return tn
			}
			e = x.X
		default:
			return ""
		}
	}
}
