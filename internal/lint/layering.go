package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// layeringRule enforces the import DAG ARCHITECTURE.md documents: leaf
// utilities import nothing module-internal, corpus parsers sit below
// the serving layer, and the root build package never reaches up into
// store or the daemons. The table is a denylist: an entry forbids the
// exact package and everything under it.
func layeringRule(m *Module, cfg *Config) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		denied, ok := cfg.Layering[p.RelPath]
		if !ok {
			continue
		}
		for _, file := range p.Files {
			for _, spec := range file.Imports {
				out = append(out, checkImport(m, p, spec, denied)...)
			}
		}
	}
	return out
}

func checkImport(m *Module, p *Package, spec *ast.ImportSpec, denied []string) []Finding {
	ipath := strings.Trim(spec.Path.Value, `"`)
	rel, ok := m.Rel(ipath)
	if !ok {
		return nil // outside the module; stdlib is always allowed
	}
	for _, d := range denied {
		match := rel == d || (d != "" && strings.HasPrefix(rel, d+"/"))
		if d == "" {
			match = rel == "" // denying the root package itself
		}
		if match {
			name := rel
			if name == "" {
				name = "the root package"
			}
			return []Finding{m.finding(spec.Pos(), RuleLayering,
				fmt.Sprintf("package %s must not import %s (import DAG in ARCHITECTURE.md)", p.RelName(), name))}
		}
	}
	return nil
}
