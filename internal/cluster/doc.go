// Package cluster implements Prefix2Org's prefix aggregation (§5.3.2 and
// §5.3.3 of the paper).
//
// Input: one row per routed prefix carrying the prefix's exact Direct
// Owner name, the cleaned base name, the child-most RPKI Resource
// Certificate identity (if any), and the origin ASN cluster (if any).
//
// Three families of clusters are formed:
//
//	W — Default Clusters: prefixes grouped by the exact Direct Owner
//	    name (after basic string processing).
//	R — prefixes sharing a base name AND listed in the same Resource
//	    Certificate (shared management).
//	A — prefixes sharing a base name AND originated by ASNs of the same
//	    ASN cluster (shared operation).
//
// Finally, W clusters that share membership in any R or A group are
// merged (Figure 3): the result is the connected-component fixpoint of
// the bipartite membership graph, computed with a disjoint-set union.
// Because R and A groups are keyed by base name, only same-base-name W
// clusters can ever merge — organizations with similar names but disjoint
// routing and RPKI management (Fastly, Inc. vs Fastly Network Solution)
// stay separate.
//
// # Goroutine safety
//
// Build is a pure function: it reads its input slice, works on local
// state (including a function-local DSU), and returns a freshly
// allocated Result. Distinct Build calls may run concurrently; a single
// Result is immutable afterwards and safe to share. In the pipeline this
// stage runs single-threaded, after the parallel resolve pool has been
// drained and merged deterministically, so its input order — and
// therefore its cluster IDs — never depends on Options.Workers.
package cluster
