package cluster

import (
	"crypto/sha256"
	"fmt"
	"net/netip"
	"sort"

	"github.com/prefix2org/prefix2org/internal/dsu"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// PrefixInfo is one routed prefix's clustering inputs.
type PrefixInfo struct {
	Prefix netip.Prefix
	// OwnerName is the exact Direct Owner name (basic-cleaned), the W
	// cluster key.
	OwnerName string
	// BaseName is the cleaned base name from the names pipeline.
	BaseName string
	// CertSKI identifies the child-most RPKI Resource Certificate
	// covering the prefix; empty when the prefix is not in any RC.
	CertSKI string
	// ASNCluster identifies the origin ASN's cluster; empty when the
	// prefix is not routed or the origin is unknown.
	ASNCluster string
}

// Cluster is one final prefix cluster: the prefixes of one inferred
// organization.
type Cluster struct {
	// ID is a stable identifier, "<basename>-<hash>" (e.g.
	// "verizon-076541").
	ID string
	// BaseName is the shared base name of the cluster's Direct Owners.
	BaseName string
	// OwnerNames are the distinct exact Direct Owner names merged into
	// this cluster, sorted.
	OwnerNames []string
	// Prefixes are the member prefixes in canonical order.
	Prefixes []netip.Prefix
}

// MultiName reports whether the cluster aggregates more than one exact
// WHOIS organization name (the paper's "multi-org-name cluster").
func (c *Cluster) MultiName() bool { return len(c.OwnerNames) > 1 }

// Result is the outcome of Build.
type Result struct {
	// Final are the merged clusters, sorted by ID.
	Final []*Cluster
	// WCount is the number of Default (exact-name) clusters.
	WCount int
	// RGroups / AGroups count the distinct non-trivial R and A groups.
	RGroups, AGroups int
	// RMultiName / AMultiName count R and A groups spanning more than
	// one exact owner name (the groups that caused aggregation).
	RMultiName, AMultiName int

	byOwner  map[string]*Cluster
	byPrefix map[netip.Prefix]*Cluster
}

// ClusterOfOwner returns the final cluster containing the exact owner
// name.
func (r *Result) ClusterOfOwner(owner string) (*Cluster, bool) {
	c, ok := r.byOwner[owner]
	return c, ok
}

// ClusterOfPrefix returns the final cluster containing the prefix.
func (r *Result) ClusterOfPrefix(p netip.Prefix) (*Cluster, bool) {
	c, ok := r.byPrefix[p.Masked()]
	return c, ok
}

// Build runs the full W/R/A construction and the Figure 3 merge.
func Build(infos []PrefixInfo) *Result {
	u := dsu.New()
	// W clusters: one DSU element per exact owner name.
	owners := map[string]bool{}
	for _, in := range infos {
		if in.OwnerName == "" {
			continue
		}
		owners[in.OwnerName] = true
		u.Add(in.OwnerName)
	}

	// R and A groups: base name × shared certificate / ASN cluster. Each
	// group unions the W clusters of its members.
	type groupKey struct{ base, id string }
	rGroups := map[groupKey][]string{} // owner names per group
	aGroups := map[groupKey][]string{}
	for _, in := range infos {
		if in.OwnerName == "" || in.BaseName == "" {
			continue
		}
		if in.CertSKI != "" {
			k := groupKey{in.BaseName, in.CertSKI}
			rGroups[k] = append(rGroups[k], in.OwnerName)
		}
		if in.ASNCluster != "" {
			k := groupKey{in.BaseName, in.ASNCluster}
			aGroups[k] = append(aGroups[k], in.OwnerName)
		}
	}
	countMulti := func(groups map[groupKey][]string) int {
		n := 0
		for _, members := range groups {
			distinct := map[string]bool{}
			for _, o := range members {
				distinct[o] = true
			}
			if len(distinct) > 1 {
				n++
			}
		}
		return n
	}
	res := &Result{
		WCount:     len(owners),
		RGroups:    len(rGroups),
		AGroups:    len(aGroups),
		RMultiName: countMulti(rGroups),
		AMultiName: countMulti(aGroups),
		byOwner:    map[string]*Cluster{},
		byPrefix:   map[netip.Prefix]*Cluster{},
	}
	for _, members := range rGroups {
		for i := 1; i < len(members); i++ {
			u.Union(members[0], members[i])
		}
	}
	for _, members := range aGroups {
		for i := 1; i < len(members); i++ {
			u.Union(members[0], members[i])
		}
	}

	// Materialize final clusters from the DSU components.
	compOwners := map[string][]string{}
	for owner := range owners {
		rep := u.Find(owner)
		compOwners[rep] = append(compOwners[rep], owner)
	}
	baseOf := map[string]string{}
	prefixesOf := map[string][]netip.Prefix{}
	for _, in := range infos {
		if in.OwnerName == "" {
			continue
		}
		rep := u.Find(in.OwnerName)
		prefixesOf[rep] = append(prefixesOf[rep], in.Prefix.Masked())
		if baseOf[rep] == "" && in.BaseName != "" {
			baseOf[rep] = in.BaseName
		}
	}
	for rep, members := range compOwners {
		sort.Strings(members)
		c := &Cluster{
			BaseName:   baseOf[rep],
			OwnerNames: members,
			Prefixes:   netx.Dedup(prefixesOf[rep]),
		}
		c.ID = clusterID(c.BaseName, members)
		res.Final = append(res.Final, c)
		for _, o := range members {
			res.byOwner[o] = c
		}
		for _, p := range c.Prefixes {
			res.byPrefix[p] = c
		}
	}
	sort.Slice(res.Final, func(i, j int) bool { return res.Final[i].ID < res.Final[j].ID })
	return res
}

// clusterID derives the stable "<basename>-<hash>" identifier from the
// sorted member names.
func clusterID(base string, owners []string) string {
	h := sha256.New()
	for _, o := range owners {
		fmt.Fprintf(h, "%s|", o)
	}
	sum := h.Sum(nil)
	if base == "" {
		base = "unnamed"
	}
	return fmt.Sprintf("%s-%02x%02x%02x", base, sum[0], sum[1], sum[2])
}
