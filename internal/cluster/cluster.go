package cluster

import (
	"crypto/sha256"
	"fmt"
	"net/netip"
	"slices"
	"strings"

	"github.com/prefix2org/prefix2org/internal/netx"
)

// PrefixInfo is one routed prefix's clustering inputs.
type PrefixInfo struct {
	Prefix netip.Prefix
	// OwnerName is the exact Direct Owner name (basic-cleaned), the W
	// cluster key.
	OwnerName string
	// BaseName is the cleaned base name from the names pipeline.
	BaseName string
	// CertSKI identifies the child-most RPKI Resource Certificate
	// covering the prefix; empty when the prefix is not in any RC.
	CertSKI string
	// ASNCluster identifies the origin ASN's cluster; empty when the
	// prefix is not routed or the origin is unknown.
	ASNCluster string
}

// Cluster is one final prefix cluster: the prefixes of one inferred
// organization.
type Cluster struct {
	// ID is a stable identifier, "<basename>-<hash>" (e.g.
	// "verizon-076541").
	ID string
	// BaseName is the shared base name of the cluster's Direct Owners.
	BaseName string
	// OwnerNames are the distinct exact Direct Owner names merged into
	// this cluster, sorted.
	OwnerNames []string
	// Prefixes are the member prefixes in canonical order.
	Prefixes []netip.Prefix
}

// MultiName reports whether the cluster aggregates more than one exact
// WHOIS organization name (the paper's "multi-org-name cluster").
func (c *Cluster) MultiName() bool { return len(c.OwnerNames) > 1 }

// Result is the outcome of Build.
type Result struct {
	// Final are the merged clusters, sorted by ID.
	Final []*Cluster
	// WCount is the number of Default (exact-name) clusters.
	WCount int
	// RGroups / AGroups count the distinct non-trivial R and A groups.
	RGroups, AGroups int
	// RMultiName / AMultiName count R and A groups spanning more than
	// one exact owner name (the groups that caused aggregation).
	RMultiName, AMultiName int

	byOwner  map[string]*Cluster
	byPrefix map[netip.Prefix]*Cluster
}

// ClusterOfOwner returns the final cluster containing the exact owner
// name.
func (r *Result) ClusterOfOwner(owner string) (*Cluster, bool) {
	c, ok := r.byOwner[owner]
	return c, ok
}

// ClusterOfPrefix returns the final cluster containing the prefix.
func (r *Result) ClusterOfPrefix(p netip.Prefix) (*Cluster, bool) {
	c, ok := r.byPrefix[p.Masked()]
	return c, ok
}

// Build runs the full W/R/A construction and the Figure 3 merge.
//
// Owner names are interned to dense integer IDs up front and the
// union-find runs over plain int slices: the merge is on the snapshot
// rebuild path (full and delta alike), where the map-of-strings DSU it
// replaced dominated the pass. The output — grouping, member order,
// per-cluster base name, IDs — is identical to the string-keyed
// construction, since union-find components do not depend on
// representative choice.
func Build(infos []PrefixInfo) *Result {
	// W clusters: one DSU element per exact owner name, interned in
	// first-appearance order.
	ownerID := make(map[string]int32, len(infos)/4)
	var ownerNames []string
	intern := func(name string) int32 {
		id, ok := ownerID[name]
		if !ok {
			id = int32(len(ownerNames))
			ownerID[name] = id
			ownerNames = append(ownerNames, name)
		}
		return id
	}
	ids := make([]int32, len(infos)) // per-info owner ID; -1 when unowned
	for i := range infos {
		if infos[i].OwnerName == "" {
			ids[i] = -1
			continue
		}
		ids[i] = intern(infos[i].OwnerName)
	}
	u := newIntDSU(len(ownerNames))

	// R and A groups: base name × shared certificate / ASN cluster. Each
	// group unions the W clusters of its members. Groups are gathered in
	// a slice indexed through a key map, so the concatenated key string
	// is materialized only on a group's first appearance: a lookup on
	// string(keyBuf) never copies the bytes, and assignments (which do)
	// happen once per distinct group instead of once per prefix.
	type grouper struct {
		idx     map[string]int32
		members [][]int32 // member owner IDs per group
	}
	newGrouper := func() *grouper {
		return &grouper{idx: make(map[string]int32, len(infos)/4)}
	}
	var keyBuf []byte
	add := func(g *grouper, base, disc string, id int32) {
		keyBuf = append(append(append(keyBuf[:0], base...), 0), disc...)
		gi, ok := g.idx[string(keyBuf)]
		if !ok {
			gi = int32(len(g.members))
			g.idx[string(keyBuf)] = gi
			g.members = append(g.members, nil)
		}
		g.members[gi] = append(g.members[gi], id)
	}
	rGroups, aGroups := newGrouper(), newGrouper()
	for i := range infos {
		in := &infos[i]
		if ids[i] < 0 || in.BaseName == "" {
			continue
		}
		if in.CertSKI != "" {
			add(rGroups, in.BaseName, in.CertSKI, ids[i])
		}
		if in.ASNCluster != "" {
			add(aGroups, in.BaseName, in.ASNCluster, ids[i])
		}
	}
	countMulti := func(g *grouper) int {
		n := 0
		for _, members := range g.members {
			first := members[0]
			for _, o := range members[1:] {
				if o != first {
					n++
					break
				}
			}
		}
		return n
	}
	res := &Result{
		WCount:     len(ownerNames),
		RGroups:    len(rGroups.members),
		AGroups:    len(aGroups.members),
		RMultiName: countMulti(rGroups),
		AMultiName: countMulti(aGroups),
		byOwner:    make(map[string]*Cluster, len(ownerNames)),
		byPrefix:   make(map[netip.Prefix]*Cluster, len(infos)),
	}
	for _, members := range rGroups.members {
		for i := 1; i < len(members); i++ {
			u.union(members[0], members[i])
		}
	}
	for _, members := range aGroups.members {
		for i := 1; i < len(members); i++ {
			u.union(members[0], members[i])
		}
	}

	// Materialize final clusters from the DSU components.
	compOwners := make(map[int32][]string, len(ownerNames))
	for id, name := range ownerNames {
		rep := u.find(int32(id))
		compOwners[rep] = append(compOwners[rep], name)
	}
	baseOf := make(map[int32]string, len(compOwners))
	prefixesOf := make(map[int32][]netip.Prefix, len(compOwners))
	for i := range infos {
		if ids[i] < 0 {
			continue
		}
		rep := u.find(ids[i])
		prefixesOf[rep] = append(prefixesOf[rep], infos[i].Prefix.Masked())
		if baseOf[rep] == "" && infos[i].BaseName != "" {
			baseOf[rep] = infos[i].BaseName
		}
	}
	for rep, members := range compOwners {
		slices.Sort(members)
		c := &Cluster{
			BaseName:   baseOf[rep],
			OwnerNames: members,
			Prefixes:   netx.Dedup(prefixesOf[rep]),
		}
		c.ID = clusterID(c.BaseName, members)
		res.Final = append(res.Final, c)
		for _, o := range members {
			res.byOwner[o] = c
		}
		for _, p := range c.Prefixes {
			res.byPrefix[p] = c
		}
	}
	slices.SortFunc(res.Final, func(a, b *Cluster) int { return strings.Compare(a.ID, b.ID) })
	return res
}

// intDSU is a slice-backed union-find over the interned owner IDs, with
// path compression and union by size.
type intDSU struct {
	parent []int32
	size   []int32
}

func newIntDSU(n int) *intDSU {
	d := &intDSU{parent: make([]int32, n), size: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

func (d *intDSU) find(x int32) int32 {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

func (d *intDSU) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
}

// clusterID derives the stable "<basename>-<hash>" identifier from the
// sorted member names.
func clusterID(base string, owners []string) string {
	h := sha256.New()
	for _, o := range owners {
		fmt.Fprintf(h, "%s|", o)
	}
	sum := h.Sum(nil)
	if base == "" {
		base = "unnamed"
	}
	return fmt.Sprintf("%s-%02x%02x%02x", base, sum[0], sum[1], sum[2])
}
