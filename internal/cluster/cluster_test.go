package cluster

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"github.com/prefix2org/prefix2org/internal/netx"
)

func mp(s string) netip.Prefix { return netx.MustParse(s) }

// Table 3 scenario: four Verizon prefixes under three exact names must
// merge into one cluster; the two Fastlys must stay apart.
func table3Infos() []PrefixInfo {
	return []PrefixInfo{
		// P1-P3 share RPKI cert 0E:65:A4, different ASN clusters.
		{mp("210.80.198.0/24"), "verizon japan ltd", "verizon", "0E:65:A4", "18692"},
		{mp("2404:e8:100::/40"), "verizon asia pte ltd", "verizon", "0E:65:A4", "701"},
		{mp("203.193.92.0/24"), "verizon hong kong ltd", "verizon", "0E:65:A4", "395753"},
		// P4 shares the ASN cluster with P3 but a different cert.
		{mp("65.196.14.0/24"), "verizon business", "verizon", "29:92:C2", "395753"},
		// P5, P6: Fastly Inc (same ASN cluster, different certs).
		{mp("2a04:4e40:8440::/48"), "fastly, inc.", "fastly", "8E:AD:ED", "54113"},
		{mp("172.111.123.0/24"), "fastly, inc.", "fastly", "0F:DD:01", "54113"},
		// P7: Fastly Network Solution — same base name, disjoint cert+ASN.
		{mp("103.186.154.0/24"), "fastly network solution", "fastly", "16:7C:3B", "63739"},
	}
}

func TestTable3Scenario(t *testing.T) {
	res := Build(table3Infos())
	vz, ok := res.ClusterOfOwner("verizon business")
	if !ok {
		t.Fatal("verizon business not clustered")
	}
	for _, owner := range []string{"verizon japan ltd", "verizon asia pte ltd", "verizon hong kong ltd"} {
		c, ok := res.ClusterOfOwner(owner)
		if !ok || c != vz {
			t.Errorf("%s not merged into the Verizon cluster", owner)
		}
	}
	if len(vz.OwnerNames) != 4 || !vz.MultiName() {
		t.Errorf("verizon cluster owners = %v", vz.OwnerNames)
	}
	if len(vz.Prefixes) != 4 {
		t.Errorf("verizon cluster prefixes = %v", vz.Prefixes)
	}
	f1, _ := res.ClusterOfOwner("fastly, inc.")
	f2, _ := res.ClusterOfOwner("fastly network solution")
	if f1 == nil || f2 == nil || f1 == f2 {
		t.Error("the two Fastlys merged despite disjoint cert and ASN clusters")
	}
	if f1.MultiName() || f2.MultiName() {
		t.Error("single-name Fastly clusters reported multi-name")
	}
	if len(res.Final) != 3 {
		t.Errorf("final clusters = %d, want 3", len(res.Final))
	}
	if res.WCount != 6 {
		t.Errorf("W count = %d, want 6 exact names", res.WCount)
	}
}

func TestClusterByPrefixLookup(t *testing.T) {
	res := Build(table3Infos())
	c, ok := res.ClusterOfPrefix(mp("65.196.14.0/24"))
	if !ok || c.BaseName != "verizon" {
		t.Errorf("ClusterOfPrefix = %v,%v", c, ok)
	}
	if _, ok := res.ClusterOfPrefix(mp("8.8.8.0/24")); ok {
		t.Error("unknown prefix found a cluster")
	}
}

// Same base name alone must NOT merge (no shared cert, no shared ASN).
func TestBaseNameAloneInsufficient(t *testing.T) {
	res := Build([]PrefixInfo{
		{mp("10.0.0.0/16"), "telefonica de espana", "telefonica", "C1", "100"},
		{mp("11.0.0.0/16"), "telefonica celular de bolivia", "telefonica", "C2", "200"},
	})
	if len(res.Final) != 2 {
		t.Errorf("unrelated same-base-name orgs merged: %+v", res.Final)
	}
}

// Shared cert with different base names must NOT merge (RIPE legacy
// shared certificate, sponsoring-org certs).
func TestSharedCertDifferentBaseNamesNotMerged(t *testing.T) {
	res := Build([]PrefixInfo{
		{mp("10.0.0.0/16"), "acme gmbh", "acme", "LEGACY-CERT", "100"},
		{mp("11.0.0.0/16"), "zenith sa", "zenith", "LEGACY-CERT", "200"},
	})
	if len(res.Final) != 2 {
		t.Errorf("different base names merged through shared legacy cert: %+v", res.Final)
	}
}

func TestTransitiveMergeThroughChain(t *testing.T) {
	// A~B via cert, B~C via ASN cluster: all three merge.
	res := Build([]PrefixInfo{
		{mp("10.0.0.0/16"), "acme east", "acme", "CERT1", "AS1"},
		{mp("11.0.0.0/16"), "acme west", "acme", "CERT1", "AS2"},
		{mp("12.0.0.0/16"), "acme west", "acme", "CERT2", "AS3"},
		{mp("13.0.0.0/16"), "acme north", "acme", "CERT2", "AS4"},
	})
	if len(res.Final) != 1 {
		t.Fatalf("final = %d clusters, want 1", len(res.Final))
	}
	if got := res.Final[0].OwnerNames; len(got) != 3 {
		t.Errorf("owners = %v", got)
	}
}

func TestMissingSignalsHandled(t *testing.T) {
	res := Build([]PrefixInfo{
		{mp("10.0.0.0/16"), "acme east", "acme", "", ""}, // no cert, no ASN
		{mp("11.0.0.0/16"), "acme west", "acme", "", ""},
		{Prefix: mp("12.0.0.0/16")}, // nameless: ignored
	})
	if len(res.Final) != 2 {
		t.Errorf("signal-less rows should stay separate: %+v", res.Final)
	}
	if _, ok := res.ClusterOfPrefix(mp("12.0.0.0/16")); ok {
		t.Error("nameless prefix got a cluster")
	}
}

func TestClusterIDStableAndDistinct(t *testing.T) {
	a := Build(table3Infos())
	b := Build(table3Infos())
	if len(a.Final) != len(b.Final) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a.Final {
		if a.Final[i].ID != b.Final[i].ID {
			t.Errorf("cluster ID unstable: %s vs %s", a.Final[i].ID, b.Final[i].ID)
		}
	}
	seen := map[string]bool{}
	for _, c := range a.Final {
		if seen[c.ID] {
			t.Errorf("duplicate cluster ID %s", c.ID)
		}
		seen[c.ID] = true
	}
	// The two Fastlys share a base name but must get distinct IDs.
	f1, _ := a.ClusterOfOwner("fastly, inc.")
	f2, _ := a.ClusterOfOwner("fastly network solution")
	if f1.ID == f2.ID {
		t.Error("distinct Fastly clusters share an ID")
	}
}

func TestGroupCounts(t *testing.T) {
	res := Build(table3Infos())
	// R groups: (verizon,0E:65:A4), (verizon,29:92:C2), (fastly,8E:AD:ED),
	// (fastly,0F:DD:01), (fastly,16:7C:3B) = 5.
	if res.RGroups != 5 {
		t.Errorf("RGroups = %d, want 5", res.RGroups)
	}
	// A groups: (verizon,18692), (verizon,701), (verizon,395753),
	// (fastly,54113), (fastly,63739) = 5.
	if res.AGroups != 5 {
		t.Errorf("AGroups = %d, want 5", res.AGroups)
	}
	// Multi-name groups: R(verizon,0E:65:A4) spans 3 names;
	// A(verizon,395753) spans 2 names.
	if res.RMultiName != 1 || res.AMultiName != 1 {
		t.Errorf("multi-name groups = R%d A%d, want 1/1", res.RMultiName, res.AMultiName)
	}
}

// Property: the merge equals brute-force connected components of the
// owner graph where edges connect owners co-appearing in an R or A group.
func TestMergeEqualsBruteForceComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		nOwners := 2 + rng.Intn(20)
		baseCount := 1 + rng.Intn(4)
		var infos []PrefixInfo
		ownerBase := map[string]string{}
		for i := 0; i < nOwners; i++ {
			base := fmt.Sprintf("base%d", rng.Intn(baseCount))
			owner := fmt.Sprintf("%s owner%d", base, i)
			ownerBase[owner] = base
			nPrefixes := 1 + rng.Intn(3)
			for j := 0; j < nPrefixes; j++ {
				p, _ := netx.NthSubprefix(mp("10.0.0.0/8"), 24, i*16+j)
				cert := ""
				if rng.Intn(3) > 0 {
					cert = fmt.Sprintf("CERT%d", rng.Intn(6))
				}
				asn := ""
				if rng.Intn(3) > 0 {
					asn = fmt.Sprintf("AS%d", rng.Intn(6))
				}
				infos = append(infos, PrefixInfo{p, owner, base, cert, asn})
			}
		}
		res := Build(infos)

		// Brute force: adjacency between owners sharing base+cert or
		// base+ASN group.
		type gk struct{ base, id string }
		groups := map[gk]map[string]bool{}
		for _, in := range infos {
			if in.CertSKI != "" {
				k := gk{in.BaseName, "R" + in.CertSKI}
				if groups[k] == nil {
					groups[k] = map[string]bool{}
				}
				groups[k][in.OwnerName] = true
			}
			if in.ASNCluster != "" {
				k := gk{in.BaseName, "A" + in.ASNCluster}
				if groups[k] == nil {
					groups[k] = map[string]bool{}
				}
				groups[k][in.OwnerName] = true
			}
		}
		adj := map[string][]string{}
		for _, members := range groups {
			var list []string
			for o := range members {
				list = append(list, o)
			}
			for i := 1; i < len(list); i++ {
				adj[list[0]] = append(adj[list[0]], list[i])
				adj[list[i]] = append(adj[list[i]], list[0])
			}
		}
		comp := map[string]int{}
		next := 0
		for owner := range ownerBase {
			if _, done := comp[owner]; done {
				continue
			}
			next++
			stack := []string{owner}
			comp[owner] = next
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nb := range adj[cur] {
					if _, done := comp[nb]; !done {
						comp[nb] = next
						stack = append(stack, nb)
					}
				}
			}
		}
		for a := range ownerBase {
			for b := range ownerBase {
				ca, _ := res.ClusterOfOwner(a)
				cb, _ := res.ClusterOfOwner(b)
				if (ca == cb) != (comp[a] == comp[b]) {
					t.Fatalf("trial %d: owners %q,%q: cluster match %v, brute force %v",
						trial, a, b, ca == cb, comp[a] == comp[b])
				}
			}
		}
	}
}

// Order independence: shuffling the input rows yields identical clusters.
func TestOrderIndependence(t *testing.T) {
	infos := table3Infos()
	res1 := Build(infos)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]PrefixInfo, len(infos))
		copy(shuffled, infos)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		res2 := Build(shuffled)
		if len(res1.Final) != len(res2.Final) {
			t.Fatal("cluster count depends on input order")
		}
		for i := range res1.Final {
			if res1.Final[i].ID != res2.Final[i].ID {
				t.Fatalf("cluster IDs depend on input order: %s vs %s", res1.Final[i].ID, res2.Final[i].ID)
			}
		}
	}
}

func TestDuplicatePrefixRowsDeduped(t *testing.T) {
	res := Build([]PrefixInfo{
		{mp("10.0.0.0/16"), "acme", "acme", "C1", "A1"},
		{mp("10.0.0.0/16"), "acme", "acme", "C1", "A1"},
	})
	if len(res.Final) != 1 || len(res.Final[0].Prefixes) != 1 {
		t.Errorf("duplicate rows not deduped: %+v", res.Final)
	}
}
