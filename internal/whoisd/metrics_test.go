package whoisd

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/obs"
)

// fetchSnapshot reads the admin listener's JSON metrics view.
func fetchSnapshot(t *testing.T, addr string) obs.Snapshot {
	t.Helper()
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMetricsEndToEnd drives the full observability path: a WHOIS query
// against a running server must move the query and latency metrics as
// served by the admin listener's /metrics endpoint.
func TestMetricsEndToEnd(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin, err := obs.ServeAdmin("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// /healthz must answer before any traffic.
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + admin.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	before := fetchSnapshot(t, admin.Addr())

	query := func(q string) string {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(q + "\r\n")); err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(conn)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	rec := &ds.Records[0]
	if out := query(rec.Prefix.String()); !strings.Contains(out, "direct-owner:") {
		t.Fatalf("unexpected answer: %q", out)
	}
	if out := query(rec.DirectOwner); !strings.Contains(out, "cluster:") {
		t.Fatalf("unexpected org answer: %q", out)
	}

	after := fetchSnapshot(t, admin.Addr())
	prefixKey := `whoisd_queries_total{type="prefix"}`
	orgKey := `whoisd_queries_total{type="org"}`
	if d := after.Counters[prefixKey] - before.Counters[prefixKey]; d < 1 {
		t.Errorf("prefix query counter moved by %d, want >= 1", d)
	}
	if d := after.Counters[orgKey] - before.Counters[orgKey]; d < 1 {
		t.Errorf("org query counter moved by %d, want >= 1", d)
	}
	hb, ha := before.Histograms["whoisd_query_seconds"], after.Histograms["whoisd_query_seconds"]
	if d := ha.Count - hb.Count; d < 2 {
		t.Errorf("latency histogram count moved by %d, want >= 2", d)
	}
	if ha.Sum < hb.Sum {
		t.Errorf("latency histogram sum went backwards: %v -> %v", hb.Sum, ha.Sum)
	}

	// The text exposition must carry the same counter.
	resp, err = c.Get("http://" + admin.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "whoisd_queries_total") {
		t.Errorf("text /metrics missing whoisd counters:\n%s", body)
	}
}

// TestServeErrorsCounted asserts that a client that connects and sends
// nothing (read failure after deadline is too slow to test; an abrupt
// close is equivalent) is accounted as a serve error, not a query.
func TestServeErrorsCounted(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := mServeErrors.Value()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close() // no query line at all
	deadline := time.Now().Add(5 * time.Second)
	for mServeErrors.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("serve-error counter never moved")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
