// Package whoisd serves a Prefix2Org dataset over the WHOIS protocol
// (RFC 3912): clients query a prefix, an address, or an organization
// name and receive the Listing-1-style ownership record or the final
// cluster — the natural "operators query our public dataset" deployment
// of the paper's artifact.
package whoisd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	prefix2org "github.com/prefix2org/prefix2org"
	"github.com/prefix2org/prefix2org/internal/obs"
	"github.com/prefix2org/prefix2org/internal/radix"
)

// Server metrics, registered on the process-wide registry so the admin
// listener's /metrics page exposes them.
var (
	mQueriesPrefix = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "prefix"))
	mQueriesAddr   = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "addr"))
	mQueriesOrg    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "org"))
	mQueriesBad    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "bad"))
	mNoMatch       = obs.Default().Counter("whoisd_no_match_total")
	mAcceptErrors  = obs.Default().Counter("whoisd_accept_errors_total")
	mServeErrors   = obs.Default().Counter("whoisd_serve_errors_total")
	mLatency       = obs.Default().Histogram("whoisd_query_seconds", obs.DefBuckets)

	logger = obs.Logger("whoisd")
)

// Server serves one dataset. Safe for concurrent queries.
type Server struct {
	ds *prefix2org.Dataset
	// lpm finds the record of the most specific routed prefix covering
	// an address-only query.
	lpm *radix.Tree[*prefix2org.Record]

	lis  net.Listener
	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a server over ds.
func New(ds *prefix2org.Dataset) *Server {
	s := &Server{ds: ds, lpm: radix.New[*prefix2org.Record](), done: make(chan struct{})}
	for i := range ds.Records {
		s.lpm.Insert(ds.Records[i].Prefix, &ds.Records[i])
	}
	return s
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("whoisd: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight queries.
func (s *Server) Close() error {
	close(s.done)
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				mAcceptErrors.Inc()
				logger.Warn("accept failed", "err", err)
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	_ = conn.SetDeadline(start.Add(30 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		mServeErrors.Inc()
		logger.Warn("query read failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	if _, err := io.WriteString(conn, s.Answer(strings.TrimSpace(line))); err != nil {
		mServeErrors.Inc()
		logger.Warn("response write failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	mLatency.ObserveSince(start)
}

// Answer resolves one query line to the response body. Exposed for tests
// and for embedding in other transports.
func (s *Server) Answer(q string) string {
	var b strings.Builder
	b.WriteString("% Prefix2Org whois (synthetic dataset)\r\n")
	switch {
	case q == "":
		mQueriesBad.Inc()
		b.WriteString("% error: empty query\r\n")
	case strings.Contains(q, "/"):
		p, err := netip.ParsePrefix(q)
		if err != nil {
			mQueriesBad.Inc()
			fmt.Fprintf(&b, "%% error: bad prefix %q\r\n", q)
			break
		}
		mQueriesPrefix.Inc()
		if rec, ok := s.ds.Lookup(p); ok {
			writeRecord(&b, rec)
			break
		}
		// Fall back to the most specific covering routed prefix.
		if e, ok := s.lpm.LongestMatch(p); ok {
			fmt.Fprintf(&b, "%% note: %s not announced; answering for covering %s\r\n", q, e.Value.Prefix)
			writeRecord(&b, e.Value)
			break
		}
		mNoMatch.Inc()
		b.WriteString("% no match\r\n")
	case parseAddr(q) != nil:
		mQueriesAddr.Inc()
		a := *parseAddr(q)
		if e, ok := s.lpm.LongestMatch(netip.PrefixFrom(a, a.BitLen())); ok {
			writeRecord(&b, e.Value)
			break
		}
		mNoMatch.Inc()
		b.WriteString("% no match\r\n")
	default:
		// Organization-name query.
		mQueriesOrg.Inc()
		c, ok := s.ds.ClusterOfOwner(q)
		if !ok {
			mNoMatch.Inc()
			b.WriteString("% no match\r\n")
			break
		}
		fmt.Fprintf(&b, "cluster:      %s\r\n", c.ID)
		fmt.Fprintf(&b, "base-name:    %s\r\n", c.BaseName)
		for _, n := range c.OwnerNames {
			fmt.Fprintf(&b, "org-name:     %s\r\n", n)
		}
		for _, p := range c.Prefixes {
			fmt.Fprintf(&b, "prefix:       %s\r\n", p)
		}
	}
	return b.String()
}

func parseAddr(q string) *netip.Addr {
	a, err := netip.ParseAddr(q)
	if err != nil {
		return nil
	}
	return &a
}

func writeRecord(b *strings.Builder, rec *prefix2org.Record) {
	fmt.Fprintf(b, "prefix:        %s\r\n", rec.Prefix)
	fmt.Fprintf(b, "rir:           %s\r\n", rec.RIR)
	fmt.Fprintf(b, "direct-owner:  %s\r\n", rec.DirectOwner)
	fmt.Fprintf(b, "do-prefix:     %s\r\n", rec.DOPrefix)
	fmt.Fprintf(b, "do-type:       %s\r\n", rec.DOType)
	for i, dc := range rec.DelegatedCustomers {
		fmt.Fprintf(b, "customer:      %s (%s over %s)\r\n", dc, rec.DCTypes[i], rec.DCPrefixes[i])
	}
	fmt.Fprintf(b, "base-name:     %s\r\n", rec.BaseName)
	if rec.RPKICert != "" {
		fmt.Fprintf(b, "rpki-cert:     %s\r\n", rec.RPKICert)
	}
	if rec.OriginASN != 0 {
		fmt.Fprintf(b, "origin-as:     AS%d (cluster %s)\r\n", rec.OriginASN, rec.ASNCluster)
	}
	fmt.Fprintf(b, "final-cluster: %s\r\n", rec.FinalCluster)
}
