// Package whoisd serves a Prefix2Org dataset over the WHOIS protocol
// (RFC 3912): clients query a prefix, an address, or an organization
// name and receive the Listing-1-style ownership record or the final
// cluster — the natural "operators query our public dataset" deployment
// of the paper's artifact.
//
// The server owns no dataset state: every query loads the store's
// current snapshot once and answers entirely from it, so a concurrent
// snapshot swap (hot reload) never blocks a query and never shows a
// query a mix of two dataset versions.
package whoisd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	prefix2org "github.com/prefix2org/prefix2org"
	"github.com/prefix2org/prefix2org/internal/obs"
	"github.com/prefix2org/prefix2org/internal/retry"
	"github.com/prefix2org/prefix2org/internal/store"
)

// Server metrics, registered on the process-wide registry so the admin
// listener's /metrics page exposes them.
var (
	mQueriesPrefix = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "prefix"))
	mQueriesAddr   = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "addr"))
	mQueriesOrg    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "org"))
	mQueriesBad    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "bad"))
	mNoMatch       = obs.Default().Counter("whoisd_no_match_total")
	mAcceptErrors  = obs.Default().Counter("whoisd_accept_errors_total")
	mServeErrors   = obs.Default().Counter("whoisd_serve_errors_total")
	mLatency       = obs.Default().Histogram("whoisd_query_seconds", obs.DefBuckets)

	logger = obs.Logger("whoisd")
)

// Server answers WHOIS queries from a snapshot store. Safe for
// concurrent queries and concurrent snapshot swaps.
type Server struct {
	store *store.Store

	lis  net.Listener
	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a server reading each query from st's current snapshot.
func New(st *store.Store) *Server {
	return &Server{store: st, done: make(chan struct{})}
}

// NewStatic builds a server over one fixed dataset — a single-snapshot
// store that is never swapped. Embedders and tests that have no reload
// story use this.
func NewStatic(ds *prefix2org.Dataset) *Server {
	return New(store.New(&store.Snapshot{Dataset: ds}))
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("whoisd: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight queries.
func (s *Server) Close() error {
	close(s.done)
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Persistent Accept failures (fd exhaustion, a dying interface)
	// would otherwise spin this loop hot; back off exponentially and
	// recover as soon as one accept succeeds.
	bo := retry.Backoff{Min: 5 * time.Millisecond, Max: time.Second}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			mAcceptErrors.Inc()
			logger.Warn("accept failed", "err", err)
			select {
			case <-s.done:
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		bo.Reset()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	_ = conn.SetDeadline(start.Add(30 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		mServeErrors.Inc()
		logger.Warn("query read failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	// Answer straight onto the buffered socket writer: the response
	// body never materializes as one large string on the wire path.
	bw := bufio.NewWriter(conn)
	s.answer(bw, strings.TrimSpace(line))
	if err := bw.Flush(); err != nil {
		mServeErrors.Inc()
		logger.Warn("response write failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	mLatency.ObserveSince(start)
}

// Answer resolves one query line to the response body, entirely against
// the snapshot current at entry. Exposed for tests and for embedding in
// other transports; the wire path uses answer directly with the
// connection's buffered writer.
func (s *Server) Answer(q string) string {
	var b strings.Builder
	s.answer(&b, q)
	return b.String()
}

// answer writes the response for one query line to w. Writes to a
// strings.Builder or bufio.Writer cannot fail; transport errors
// surface at Flush time in the caller.
func (s *Server) answer(w io.Writer, q string) {
	ds := s.store.Current().Dataset
	io.WriteString(w, "% Prefix2Org whois (synthetic dataset)\r\n")
	switch {
	case ds == nil:
		mServeErrors.Inc()
		io.WriteString(w, "% error: no dataset loaded\r\n")
	case q == "":
		mQueriesBad.Inc()
		io.WriteString(w, "% error: empty query\r\n")
	case strings.Contains(q, "/"):
		p, err := netip.ParsePrefix(q)
		if err != nil {
			mQueriesBad.Inc()
			fmt.Fprintf(w, "%% error: bad prefix %q\r\n", q)
			break
		}
		mQueriesPrefix.Inc()
		if rec, ok := ds.Lookup(p); ok {
			writeRecord(w, rec)
			break
		}
		// Fall back to the most specific covering routed prefix.
		if rec, ok := ds.LookupCovering(p); ok {
			fmt.Fprintf(w, "%% note: %s not announced; answering for covering %s\r\n", q, rec.Prefix)
			writeRecord(w, rec)
			break
		}
		mNoMatch.Inc()
		io.WriteString(w, "% no match\r\n")
	default:
		if a, err := netip.ParseAddr(q); err == nil {
			mQueriesAddr.Inc()
			if rec, ok := ds.LookupAddr(a); ok {
				writeRecord(w, rec)
				break
			}
			mNoMatch.Inc()
			io.WriteString(w, "% no match\r\n")
			break
		}
		// Organization-name query.
		mQueriesOrg.Inc()
		c, ok := ds.ClusterOfOwner(q)
		if !ok {
			mNoMatch.Inc()
			io.WriteString(w, "% no match\r\n")
			break
		}
		fmt.Fprintf(w, "cluster:      %s\r\n", c.ID)
		fmt.Fprintf(w, "base-name:    %s\r\n", c.BaseName)
		for _, n := range c.OwnerNames {
			fmt.Fprintf(w, "org-name:     %s\r\n", n)
		}
		for _, p := range c.Prefixes {
			fmt.Fprintf(w, "prefix:       %s\r\n", p)
		}
	}
}

func writeRecord(w io.Writer, rec *prefix2org.Record) {
	fmt.Fprintf(w, "prefix:        %s\r\n", rec.Prefix)
	fmt.Fprintf(w, "rir:           %s\r\n", rec.RIR)
	fmt.Fprintf(w, "direct-owner:  %s\r\n", rec.DirectOwner)
	fmt.Fprintf(w, "do-prefix:     %s\r\n", rec.DOPrefix)
	fmt.Fprintf(w, "do-type:       %s\r\n", rec.DOType)
	for i, dc := range rec.DelegatedCustomers {
		fmt.Fprintf(w, "customer:      %s (%s over %s)\r\n", dc, rec.DCTypes[i], rec.DCPrefixes[i])
	}
	fmt.Fprintf(w, "base-name:     %s\r\n", rec.BaseName)
	if rec.RPKICert != "" {
		fmt.Fprintf(w, "rpki-cert:     %s\r\n", rec.RPKICert)
	}
	if rec.OriginASN != 0 {
		fmt.Fprintf(w, "origin-as:     AS%d (cluster %s)\r\n", rec.OriginASN, rec.ASNCluster)
	}
	fmt.Fprintf(w, "final-cluster: %s\r\n", rec.FinalCluster)
}
