// Package whoisd serves a Prefix2Org dataset over the WHOIS protocol
// (RFC 3912): clients query a prefix, an address, or an organization
// name and receive the Listing-1-style ownership record or the final
// cluster — the natural "operators query our public dataset" deployment
// of the paper's artifact.
//
// The server owns no dataset state: every query loads the store's
// current snapshot once and answers entirely from it, so a concurrent
// snapshot swap (hot reload) never blocks a query and never shows a
// query a mix of two dataset versions.
//
// Every query is accounted by the package's obs.QueryTelemetry: rolling
// p50/p90/p99/p999 latency gauges, an SLO-violation counter, per-
// snapshot-version query counters, and — for sampled or slow queries —
// a QuerySpan carried on the request context through parse, lookup, and
// write phases, landing in the /debug/queries ring. The unsampled path
// stays allocation-free.
package whoisd

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	prefix2org "github.com/prefix2org/prefix2org"
	"github.com/prefix2org/prefix2org/internal/obs"
	"github.com/prefix2org/prefix2org/internal/retry"
	"github.com/prefix2org/prefix2org/internal/store"
)

// Server metrics, registered on the process-wide registry so the admin
// listener's /metrics page exposes them.
var (
	mQueriesPrefix = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "prefix"))
	mQueriesAddr   = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "addr"))
	mQueriesOrg    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "org"))
	mQueriesBad    = obs.Default().Counter(obs.Label("whoisd_queries_total", "type", "bad"))
	mNoMatch       = obs.Default().Counter("whoisd_no_match_total")
	mAcceptErrors  = obs.Default().Counter("whoisd_accept_errors_total")
	mServeErrors   = obs.Default().Counter("whoisd_serve_errors_total")
	mSLOViolations = obs.Default().Counter("whoisd_slo_violations_total")
	mLatency       = obs.Default().Histogram("whoisd_query_seconds", obs.DefBuckets)

	logger = obs.Logger("whoisd")

	// telemetry accounts every query: the rolling quantile window behind
	// the whoisd_query_seconds_p* gauges, SLO tracking, and the sampled
	// QuerySpan rings served at /debug/queries. Daemon flags tune it via
	// Telemetry().
	telemetry = obs.NewQueryTelemetry(obs.QueryTelemetryConfig{
		Latency:       mLatency,
		SLOViolations: mSLOViolations,
		Logger:        logger,
	})
)

func init() {
	// Rolling SLO quantiles, computed from the telemetry window at
	// scrape time: gauges on /metrics without any per-query cost beyond
	// the window's atomic store.
	obs.Default().GaugeFunc("whoisd_query_seconds_p50", func() float64 { return telemetry.Quantile(0.50) })
	obs.Default().GaugeFunc("whoisd_query_seconds_p90", func() float64 { return telemetry.Quantile(0.90) })
	obs.Default().GaugeFunc("whoisd_query_seconds_p99", func() float64 { return telemetry.Quantile(0.99) })
	obs.Default().GaugeFunc("whoisd_query_seconds_p999", func() float64 { return telemetry.Quantile(0.999) })
}

// Telemetry returns the package's query telemetry: daemons wire the
// -slo-target / -slow-query-threshold / -query-sample flags and mount
// its DebugHandler at /debug/queries.
func Telemetry() *obs.QueryTelemetry { return telemetry }

// Query outcome classes recorded on spans and /debug/queries records.
const (
	outcomeMatch      = "match"
	outcomeCovering   = "covering"
	outcomeNoMatch    = "no_match"
	outcomeError      = "error"
	outcomeWriteError = "write_error"
)

// snapshotCounter caches the labeled per-snapshot-version query counter
// so the steady-state path is one pointer load and an atomic increment;
// the registry lookup and label rendering run only when a reload swaps
// the version.
type snapshotCounter struct {
	version uint64
	c       *obs.Counter
}

// Server answers WHOIS queries from a snapshot store. Safe for
// concurrent queries and concurrent snapshot swaps.
type Server struct {
	store *store.Store

	baseCtx   context.Context
	snapCount atomic.Pointer[snapshotCounter]

	lis  net.Listener
	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a server reading each query from st's current snapshot.
func New(st *store.Store) *Server {
	return &Server{store: st, done: make(chan struct{})}
}

// NewStatic builds a server over one fixed dataset — a single-snapshot
// store that is never swapped. Embedders and tests that have no reload
// story use this.
func NewStatic(ds *prefix2org.Dataset) *Server {
	return New(store.New(&store.Snapshot{Dataset: ds}))
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. ctx is the base context sampled query spans ride on; it
// does not stop the server (Close does). It returns the bound address.
func (s *Server) Start(ctx context.Context, addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("whoisd: listen %s: %w", addr, err)
	}
	s.baseCtx = ctx
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight queries.
func (s *Server) Close() error {
	close(s.done)
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Persistent Accept failures (fd exhaustion, a dying interface)
	// would otherwise spin this loop hot; back off exponentially and
	// recover as soon as one accept succeeds.
	bo := retry.Backoff{Min: 5 * time.Millisecond, Max: time.Second}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			mAcceptErrors.Inc()
			logger.Warn("accept failed", "err", err)
			select {
			case <-s.done:
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		bo.Reset()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	_ = conn.SetDeadline(start.Add(30 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		mServeErrors.Inc()
		logger.Warn("query read failed", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	q := strings.TrimSpace(line)
	// Sampled queries get a pooled span on the context; the rest ride
	// the base context untouched — that path never allocates.
	ctx, sp := telemetry.StartSpan(s.baseCtx)
	// Answer straight onto the buffered socket writer: the response
	// body never materializes as one large string on the wire path.
	bw := bufio.NewWriter(conn)
	res := s.answer(ctx, bw, q)
	if err := bw.Flush(); err != nil {
		mServeErrors.Inc()
		logger.Warn("response write failed", "remote", conn.RemoteAddr().String(), "err", err)
		telemetry.Finish(sp, obs.QueryInfo{
			Start: start, Text: q, Type: res.qtype,
			Outcome: outcomeWriteError, SnapshotVersion: res.version,
		})
		return
	}
	sp.Mark(obs.PhaseWrite)
	telemetry.Finish(sp, obs.QueryInfo{
		Start: start, Text: q, Type: res.qtype,
		Outcome: res.outcome, SnapshotVersion: res.version,
	})
}

// Answer resolves one query line to the response body, entirely against
// the snapshot current at entry. Exposed for tests and for embedding in
// other transports; the wire path uses answer directly with the
// connection's buffered writer.
func (s *Server) Answer(q string) string {
	var b strings.Builder
	s.answer(nil, &b, q)
	return b.String()
}

// answerResult classifies one answered query for telemetry. Plain
// values and constant strings: building one allocates nothing.
type answerResult struct {
	qtype   string
	outcome string
	version uint64
}

// answer writes the response for one query line to w, marking the
// span phases (parse / lookup; write closes at flush time) on the
// sampled span riding ctx, if any. Writes to a strings.Builder or
// bufio.Writer cannot fail; transport errors surface at Flush time in
// the caller.
//
//p2o:hotpath
func (s *Server) answer(ctx context.Context, w io.Writer, q string) answerResult {
	sp := obs.SpanFromContext(ctx)
	// Acquire pins the snapshot's backing buffer (a view-backed
	// dataset's mmap) for the duration of the answer; a swap happening
	// mid-query cannot release data this response still reads.
	snap, release := s.store.Acquire()
	defer release()
	ds := snap.Dataset
	s.countSnapshotQuery(snap.Version)
	res := answerResult{qtype: "bad", outcome: outcomeError, version: snap.Version}
	io.WriteString(w, "% Prefix2Org whois (synthetic dataset)\r\n")
	switch {
	case ds == nil:
		mServeErrors.Inc()
		io.WriteString(w, "% error: no dataset loaded\r\n")
	case q == "":
		mQueriesBad.Inc()
		io.WriteString(w, "% error: empty query\r\n")
	case strings.Contains(q, "/"):
		res.qtype = "prefix"
		p, err := netip.ParsePrefix(q)
		sp.Mark(obs.PhaseParse)
		if err != nil {
			mQueriesBad.Inc()
			res.qtype = "bad"
			//p2olint:ignore hotpath-alloc error path for malformed queries; not the per-query fast path
			fmt.Fprintf(w, "%% error: bad prefix %q\r\n", q)
			break
		}
		mQueriesPrefix.Inc()
		if rec, ok := ds.Lookup(p); ok {
			sp.Mark(obs.PhaseLookup)
			res.outcome = outcomeMatch
			writeRecord(w, rec)
			break
		}
		// Fall back to the most specific covering routed prefix.
		if rec, ok := ds.LookupCovering(p); ok {
			sp.Mark(obs.PhaseLookup)
			res.outcome = outcomeCovering
			//p2olint:ignore hotpath-alloc covering-fallback note is a rare informational line
			fmt.Fprintf(w, "%% note: %s not announced; answering for covering %s\r\n", q, rec.Prefix)
			writeRecord(w, rec)
			break
		}
		sp.Mark(obs.PhaseLookup)
		res.outcome = outcomeNoMatch
		mNoMatch.Inc()
		io.WriteString(w, "% no match\r\n")
	default:
		if a, err := netip.ParseAddr(q); err == nil {
			sp.Mark(obs.PhaseParse)
			res.qtype = "addr"
			mQueriesAddr.Inc()
			if rec, ok := ds.LookupAddr(a); ok {
				sp.Mark(obs.PhaseLookup)
				res.outcome = outcomeMatch
				writeRecord(w, rec)
				break
			}
			sp.Mark(obs.PhaseLookup)
			res.outcome = outcomeNoMatch
			mNoMatch.Inc()
			io.WriteString(w, "% no match\r\n")
			break
		}
		// Organization-name query.
		sp.Mark(obs.PhaseParse)
		res.qtype = "org"
		mQueriesOrg.Inc()
		c, ok := ds.ClusterOfOwner(q)
		sp.Mark(obs.PhaseLookup)
		if !ok {
			res.outcome = outcomeNoMatch
			mNoMatch.Inc()
			io.WriteString(w, "% no match\r\n")
			break
		}
		res.outcome = outcomeMatch
		//p2olint:ignore hotpath-alloc org responses are bounded by cluster size, not query rate
		fmt.Fprintf(w, "cluster:      %s\r\n", c.ID)
		//p2olint:ignore hotpath-alloc org responses are bounded by cluster size, not query rate
		fmt.Fprintf(w, "base-name:    %s\r\n", c.BaseName)
		for _, n := range c.OwnerNames {
			//p2olint:ignore hotpath-alloc org responses are bounded by cluster size, not query rate
			fmt.Fprintf(w, "org-name:     %s\r\n", n)
		}
		for _, p := range c.Prefixes {
			//p2olint:ignore hotpath-alloc org responses are bounded by cluster size, not query rate
			fmt.Fprintf(w, "prefix:       %s\r\n", p)
		}
	}
	return res
}

// countSnapshotQuery ties query traffic to the snapshot version that
// answered it — whoisd_queries_by_snapshot_total{version="N"} — so a
// reload's effect on traffic is directly observable on /metrics. The
// labeled counter is re-resolved only when the version changes.
//
//p2o:hotpath
func (s *Server) countSnapshotQuery(version uint64) {
	if sc := s.snapCount.Load(); sc != nil && sc.version == version {
		sc.c.Inc()
		return
	}
	c := obs.Default().Counter(obs.Label(
		"whoisd_queries_by_snapshot_total", "version", strconv.FormatUint(version, 10)))
	s.snapCount.Store(&snapshotCounter{version: version, c: c})
	c.Inc()
}

func writeRecord(w io.Writer, rec *prefix2org.Record) {
	fmt.Fprintf(w, "prefix:        %s\r\n", rec.Prefix)
	fmt.Fprintf(w, "rir:           %s\r\n", rec.RIR)
	fmt.Fprintf(w, "direct-owner:  %s\r\n", rec.DirectOwner)
	fmt.Fprintf(w, "do-prefix:     %s\r\n", rec.DOPrefix)
	fmt.Fprintf(w, "do-type:       %s\r\n", rec.DOType)
	for i, dc := range rec.DelegatedCustomers {
		fmt.Fprintf(w, "customer:      %s (%s over %s)\r\n", dc, rec.DCTypes[i], rec.DCPrefixes[i])
	}
	fmt.Fprintf(w, "base-name:     %s\r\n", rec.BaseName)
	if rec.RPKICert != "" {
		fmt.Fprintf(w, "rpki-cert:     %s\r\n", rec.RPKICert)
	}
	if rec.OriginASN != 0 {
		fmt.Fprintf(w, "origin-as:     AS%d (cluster %s)\r\n", rec.OriginASN, rec.ASNCluster)
	}
	fmt.Fprintf(w, "final-cluster: %s\r\n", rec.FinalCluster)
}
