package whoisd

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/obs"
)

// resetTelemetry returns the package telemetry to daemon defaults after
// a test that tuned it; the instance is shared package state.
func resetTelemetry(t *testing.T) {
	t.Cleanup(func() {
		telemetry.SetSampleEvery(16)
		telemetry.SetSLOTarget(0)
		telemetry.SetSlowThreshold(0)
	})
}

// TestTelemetryEndToEnd drives real TCP queries with sampling at 1-in-1
// and asserts the whole telemetry surface moves: rolling quantile
// gauges, SLO violations, per-snapshot-version counters, and the
// /debug/queries rings.
func TestTelemetryEndToEnd(t *testing.T) {
	resetTelemetry(t)
	telemetry.SetSampleEvery(1)
	telemetry.SetSLOTarget(time.Nanosecond) // every query violates
	ds := dataset(t)
	srv := NewStatic(ds)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	violationsBefore := mSLOViolations.Value()
	recentBefore := len(telemetry.Recent())
	query := func(q string) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(q + "\r\n")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(conn); err != nil {
			t.Fatal(err)
		}
	}
	rec := &ds.Records[0]
	query(rec.Prefix.String())
	query(rec.Prefix.Addr().String())
	query(rec.DirectOwner)

	// TCP handling is asynchronous relative to the client seeing EOF;
	// wait for the accounting to land.
	deadline := time.Now().Add(5 * time.Second)
	for len(telemetry.Recent()) < recentBefore+3 {
		if time.Now().After(deadline) {
			t.Fatalf("recent ring has %d records, want >= %d", len(telemetry.Recent()), recentBefore+3)
		}
		time.Sleep(time.Millisecond)
	}

	if d := mSLOViolations.Value() - violationsBefore; d < 3 {
		t.Errorf("slo violations moved by %d, want >= 3", d)
	}
	if q := telemetry.Quantile(0.5); q <= 0 {
		t.Errorf("rolling p50 = %v, want > 0", q)
	}
	newest := telemetry.Recent()[0]
	if newest.SnapshotVersion != 1 {
		t.Errorf("snapshot version on record = %d, want 1", newest.SnapshotVersion)
	}
	if newest.Outcome != "match" {
		t.Errorf("outcome = %q, want match", newest.Outcome)
	}
	if len(newest.PhasesUS) == 0 {
		t.Error("sampled record carries no phase timings")
	}

	// The scrape surface: quantile gauges and the per-version counter.
	snap := obs.Default().Snapshot()
	if v, ok := snap.Gauges["whoisd_query_seconds_p50"]; !ok || v <= 0 {
		t.Errorf("whoisd_query_seconds_p50 gauge = %v ok=%v, want > 0", v, ok)
	}
	if snap.Counters[`whoisd_queries_by_snapshot_total{version="1"}`] < 3 {
		t.Errorf("per-snapshot counter = %d, want >= 3",
			snap.Counters[`whoisd_queries_by_snapshot_total{version="1"}`])
	}

	// /debug/queries serves the same rings as JSON.
	w := httptest.NewRecorder()
	telemetry.DebugHandler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries", nil))
	var page struct {
		Recent []obs.QueryRecord `json:"recent"`
	}
	if err := json.NewDecoder(w.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Recent) < 3 {
		t.Errorf("/debug/queries recent = %d records, want >= 3", len(page.Recent))
	}
}

// TestSlowQueryCaptured pins the slow-query path: with a tiny threshold
// every query is slow, so it must land in the slow ring even when
// sampling is off.
func TestSlowQueryCaptured(t *testing.T) {
	resetTelemetry(t)
	telemetry.SetSampleEvery(0) // sampling off: slow capture must still work
	telemetry.SetSlowThreshold(time.Nanosecond)
	ds := dataset(t)
	srv := NewStatic(ds)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := len(telemetry.Slow())
	q := ds.Records[0].Prefix.String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(q + "\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(telemetry.Slow()) <= before {
		if time.Now().After(deadline) {
			t.Fatalf("slow ring did not grow: %d", len(telemetry.Slow()))
		}
		time.Sleep(time.Millisecond)
	}
	if got := telemetry.Slow()[0].Query; got != q {
		t.Errorf("slow record query = %q, want %q", got, q)
	}
}

// TestQueryAccountingZeroAlloc is the serve-path allocation guard for
// the telemetry layer: with sampling off, the per-query accounting
// (span start, snapshot-version counter, finish with quantile window,
// histogram, and SLO check) must not allocate. The response formatting
// itself is excluded — fmt-based record rendering has its own cost —
// by answering an empty query into a pre-grown buffer.
func TestQueryAccountingZeroAlloc(t *testing.T) {
	resetTelemetry(t)
	telemetry.SetSampleEvery(0)
	telemetry.SetSLOTarget(time.Millisecond)
	ds := dataset(t)
	srv := NewStatic(ds)
	start := time.Now()
	if n := testing.AllocsPerRun(200, func() {
		ctx, sp := telemetry.StartSpan(context.Background())
		sp2 := obs.SpanFromContext(ctx)
		sp2.Mark(obs.PhaseLookup)
		srv.countSnapshotQuery(srv.store.Current().Version)
		telemetry.Finish(sp, obs.QueryInfo{Start: start, Type: "addr", Outcome: "match"})
	}); n != 0 {
		t.Errorf("unsampled query accounting allocates %.1f times per query, want 0", n)
	}
}

// BenchmarkAnswerAddr measures the full serve path for an address query
// — snapshot load, LPM lookup, record rendering, telemetry accounting —
// minus the socket. Tracked by make bench-compare.
func BenchmarkAnswerAddr(b *testing.B) {
	telemetry.SetSampleEvery(16)
	if err := dsWorld(); err != nil {
		b.Fatal(err)
	}
	ds := dsVal
	srv := NewStatic(ds)
	addr := ds.Records[0].Prefix.Addr()
	q := addr.String()
	bw := bufio.NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.answer(nil, bw, q)
	}
}

// BenchmarkAnswerOverTCP measures queries end to end over loopback TCP
// with default telemetry sampling: the number p2o-loadgen reproduces
// from outside the process.
func BenchmarkAnswerOverTCP(b *testing.B) {
	telemetry.SetSampleEvery(16)
	if err := dsWorld(); err != nil {
		b.Fatal(err)
	}
	srv := NewStatic(dsVal)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	q := []byte(dsVal.Records[0].Prefix.Addr().String() + "\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(q); err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, conn); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// dsWorld builds the shared test dataset outside a testing.T context so
// benchmarks can use it too.
func dsWorld() error {
	dsOnce.Do(buildSharedDataset)
	return dsErr
}
