package whoisd

import "os"

func mkTemp() (string, error) { return os.MkdirTemp("", "p2o-whoisd-test") }
