package whoisd

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	prefix2org "github.com/prefix2org/prefix2org"
	"github.com/prefix2org/prefix2org/internal/synth"
	"github.com/prefix2org/prefix2org/internal/whois"
)

var (
	dsOnce sync.Once
	dsVal  *prefix2org.Dataset
	dsErr  error
)

// buildSharedDataset populates dsVal/dsErr once; tests reach it through
// dataset(t), benchmarks through dsWorld().
func buildSharedDataset() {
	w, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		dsErr = err
		return
	}
	dir, err := mkTemp()
	if err != nil {
		dsErr = err
		return
	}
	if err := w.WriteDir(dir); err != nil {
		dsErr = err
		return
	}
	dsVal, dsErr = prefix2org.BuildFromDir(context.Background(), dir, prefix2org.Options{})
}

func dataset(t *testing.T) *prefix2org.Dataset {
	t.Helper()
	dsOnce.Do(buildSharedDataset)
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestAnswerPrefixQuery(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	rec := &ds.Records[0]
	out := srv.Answer(rec.Prefix.String())
	for _, want := range []string{"direct-owner:", rec.DirectOwner, "final-cluster:", rec.FinalCluster} {
		if !strings.Contains(out, want) {
			t.Errorf("answer missing %q:\n%s", want, out)
		}
	}
}

func TestAnswerAddressQuery(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	rec := &ds.Records[0]
	out := srv.Answer(rec.Prefix.Addr().String())
	if !strings.Contains(out, rec.DirectOwner) {
		t.Errorf("address query missed owner:\n%s", out)
	}
}

func TestAnswerCoveringFallback(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	// Query a /30 inside the first record's prefix: not announced, so the
	// covering announcement answers.
	rec := &ds.Records[0]
	sub := rec.Prefix.Addr().String() + "/30"
	if rec.Prefix.Bits() >= 30 {
		t.Skip("first record too specific for this test")
	}
	out := srv.Answer(sub)
	if !strings.Contains(out, "covering") || !strings.Contains(out, rec.DirectOwner) {
		t.Errorf("covering fallback failed:\n%s", out)
	}
}

func TestAnswerOrgQuery(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	owner := ds.Records[0].DirectOwner
	out := srv.Answer(owner)
	if !strings.Contains(out, "cluster:") || !strings.Contains(out, "prefix:") {
		t.Errorf("org query failed:\n%s", out)
	}
}

func TestAnswerErrors(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	if out := srv.Answer(""); !strings.Contains(out, "error") {
		t.Errorf("empty query: %q", out)
	}
	if out := srv.Answer("300.1.2.3/8"); !strings.Contains(out, "error") {
		t.Errorf("bad prefix: %q", out)
	}
	if out := srv.Answer("Totally Unknown Org"); !strings.Contains(out, "no match") {
		t.Errorf("unknown org: %q", out)
	}
	if out := srv.Answer("192.0.2.0/24"); !strings.Contains(out, "no match") {
		t.Errorf("unrouted prefix: %q", out)
	}
}

func TestServeOverTCP(t *testing.T) {
	ds := dataset(t)
	srv := NewStatic(ds)
	addr, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Use the whois.Client (RFC 3912) against it.
	c := &whois.Client{Addr: addr, Timeout: 5 * time.Second}
	body, err := c.Query(context.Background(), ds.Records[0].Prefix.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, ds.Records[0].DirectOwner) {
		t.Errorf("TCP query body:\n%s", body)
	}
	// Concurrent clients.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := &ds.Records[i%len(ds.Records)]
			body, err := c.Query(context.Background(), rec.Prefix.String())
			if err != nil {
				errs <- err
				return
			}
			if !strings.Contains(body, rec.DirectOwner) {
				errs <- net.ErrClosed
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
