package whois

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

func TestParseBlockSpec(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"193.0.0.0/21", []string{"193.0.0.0/21"}},
		{"193.0.0.0 - 193.0.7.255", []string{"193.0.0.0/21"}},
		{"193.0.0.0-193.0.7.255", []string{"193.0.0.0/21"}},
		{"2001:db8::/32", []string{"2001:db8::/32"}},
		{"2001:db8:: - 2001:db8:ffff:ffff:ffff:ffff:ffff:ffff", []string{"2001:db8::/32"}},
		{"10.0.0.0 - 10.0.2.255", []string{"10.0.0.0/23", "10.0.2.0/24"}},
		{"10.1.2.3", []string{"10.1.2.3/32"}},
	}
	for _, c := range cases {
		got, err := parseBlockSpec(c.in)
		if err != nil {
			t.Errorf("parseBlockSpec(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseBlockSpec(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i].String() != c.want[i] {
				t.Errorf("parseBlockSpec(%q)[%d] = %s, want %s", c.in, i, got[i], c.want[i])
			}
		}
	}
	for _, bad := range []string{"", "banana", "10.0.0.9 - 10.0.0.1", "10.0.0.0 - banana"} {
		if _, err := parseBlockSpec(bad); err == nil {
			t.Errorf("parseBlockSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct{ in, want string }{
		{"2024-06-01T10:00:00Z", "2024-06-01"},
		{"2024-05-01", "2024-05-01"},
		{"20240501", "2024-05-01"},
		{"noc@example.net 20240501", "2024-05-01"},
	}
	for _, c := range cases {
		got, err := parseTime(c.in)
		if err != nil {
			t.Errorf("parseTime(%q): %v", c.in, err)
			continue
		}
		if got.Format("2006-01-02") != c.want {
			t.Errorf("parseTime(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	if _, err := parseTime("not a time"); err == nil {
		t.Error("parseTime accepted garbage")
	}
}

const ripeSample = `% RIPE bulk whois test data

inetnum:      193.0.0.0 - 193.0.7.255
netname:      EXAMPLE-NET
org:          ORG-EX1-RIPE
country:      DE
status:       ALLOCATED PA
last-modified: 2024-06-01T10:00:00Z

inetnum:      193.0.2.0 - 193.0.2.255
netname:      EXAMPLE-CUST
descr:        legacy descr only
country:      DE
status:       ASSIGNED PA
changed:      noc@example.net 20240315

inet6num:     2001:db8::/32
netname:      EXAMPLE-V6
org:          ORG-EX1-RIPE
status:       ALLOCATED-BY-RIR
last-modified: 2024-06-02T10:00:00Z

organisation: ORG-EX1-RIPE
org-name:     Example Networks GmbH
country:      DE
`

func TestParseRPSLRipe(t *testing.T) {
	db, err := ParseRPSL(strings.NewReader(ripeSample), alloc.RIPE)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(db.Records))
	}
	db.ResolveOrgs()
	r0 := db.Records[0]
	if r0.OrgName != "Example Networks GmbH" {
		t.Errorf("org indirection not resolved: %q", r0.OrgName)
	}
	if r0.Status != "ALLOCATED PA" || r0.NetName != "EXAMPLE-NET" || r0.Country != "DE" {
		t.Errorf("record fields wrong: %+v", r0)
	}
	if len(r0.Prefixes) != 1 || r0.Prefixes[0].String() != "193.0.0.0/21" {
		t.Errorf("range not converted: %v", r0.Prefixes)
	}
	if r0.Updated.Format("2006-01-02") != "2024-06-01" {
		t.Errorf("last-modified not parsed: %v", r0.Updated)
	}
	r1 := db.Records[1]
	if r1.OrgName != "legacy descr only" {
		t.Errorf("descr fallback failed: %q", r1.OrgName)
	}
	if r1.Updated.Format("2006-01-02") != "2024-03-15" {
		t.Errorf("changed not parsed: %v", r1.Updated)
	}
	r2 := db.Records[2]
	if r2.Prefixes[0].String() != "2001:db8::/32" {
		t.Errorf("inet6num wrong: %v", r2.Prefixes)
	}
	if ty, err := r2.Type(); err != nil || !ty.DirectOwner() {
		t.Errorf("v6 type resolution: %v %v", ty, err)
	}
}

const apnicSample = `inetnum: 203.0.0.0 - 203.0.127.255
netname: ACME-AP
descr: Acme Telecom Pty Ltd
descr: Level 5, 100 George St Sydney
country: AU
status: ALLOCATED PORTABLE
changed: apnic@acme.example 20240110
`

func TestParseRPSLAPNICDescrName(t *testing.T) {
	db, err := ParseRPSL(strings.NewReader(apnicSample), alloc.APNIC)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 1 {
		t.Fatalf("records = %d", len(db.Records))
	}
	if db.Records[0].OrgName != "Acme Telecom Pty Ltd" {
		t.Errorf("descr name = %q", db.Records[0].OrgName)
	}
}

func TestParseRPSLContinuationLines(t *testing.T) {
	in := "inetnum: 10.0.0.0\n+ - 10.0.0.255\nstatus: ALLOCATED PA\ndescr: Foo\n  Bar AG\n"
	db, err := ParseRPSL(strings.NewReader(in), alloc.APNIC)
	if err != nil {
		t.Fatal(err)
	}
	if db.Records[0].OrgName != "Foo Bar AG" {
		t.Errorf("continuation merge = %q", db.Records[0].OrgName)
	}
	if db.Records[0].Prefixes[0].String() != "10.0.0.0/24" {
		t.Errorf("continued range = %v", db.Records[0].Prefixes)
	}
}

func TestParseRPSLErrors(t *testing.T) {
	if _, err := ParseRPSL(strings.NewReader("inetnum: banana\nstatus: X\n"), alloc.RIPE); err == nil {
		t.Error("bad inetnum accepted")
	}
	if _, err := ParseRPSL(strings.NewReader("no colon line\n"), alloc.RIPE); err == nil {
		t.Error("malformed attribute accepted")
	}
	if _, err := ParseRPSL(strings.NewReader("  leading continuation\n"), alloc.RIPE); err == nil {
		t.Error("orphan continuation accepted")
	}
}

const arinSample = `# test

NetRange: 206.238.0.0 - 206.238.255.255
CIDR: 206.238.0.0/16
NetName: PSINET-B3
NetType: Allocation
OrgName: PSINet, Inc.
OrgId: PSI
Updated: 2024-05-01

NetRange: 206.238.0.0 - 206.238.255.255
NetName: TCLOUD
NetType: Reassignment
OrgName: Tcloudnet, Inc
Updated: 2024-05-02
`

func TestParseARIN(t *testing.T) {
	db, err := ParseARIN(strings.NewReader(arinSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(db.Records))
	}
	r0 := db.Records[0]
	if r0.OrgName != "PSINet, Inc." || r0.Status != "Allocation" || r0.OrgID != "PSI" {
		t.Errorf("r0 = %+v", r0)
	}
	if r0.Prefixes[0].String() != "206.238.0.0/16" {
		t.Errorf("CIDR preferred: %v", r0.Prefixes)
	}
	r1 := db.Records[1]
	if r1.Prefixes[0].String() != "206.238.0.0/16" {
		t.Errorf("NetRange fallback: %v", r1.Prefixes)
	}
	if ty, err := r1.Type(); err != nil || ty.DirectOwner() {
		t.Errorf("Reassignment should be DC: %v %v", ty, err)
	}
}

func TestParseARINMultiCIDR(t *testing.T) {
	in := "NetRange: 10.0.0.0 - 10.0.2.255\nCIDR: 10.0.0.0/23, 10.0.2.0/24\nNetType: Allocation\nOrgName: X\n"
	db, err := ParseARIN(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records[0].Prefixes) != 2 {
		t.Errorf("multi-CIDR = %v", db.Records[0].Prefixes)
	}
}

func TestParseARINErrors(t *testing.T) {
	if _, err := ParseARIN(strings.NewReader("NetType: Allocation\nOrgName: X\n")); err == nil {
		t.Error("block without NetRange accepted")
	}
	if _, err := ParseARIN(strings.NewReader("garbage line\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

const lacnicSample = `% test

inetnum: 200.160.0.0/20
status: allocated
owner: Nucleo de Informacao e Coordenacao do Ponto BR
ownerid: BR-NUIC-LACNIC
country: BR
changed: 20240501

inet6num: 2801:80::/32
status: allocated
owner: Nucleo de Informacao e Coordenacao do Ponto BR
country: BR
changed: 20240501
`

func TestParseLACNIC(t *testing.T) {
	db, err := ParseLACNIC(strings.NewReader(lacnicSample), alloc.NICBR)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 2 {
		t.Fatalf("records = %d", len(db.Records))
	}
	if db.Records[0].Registry != alloc.NICBR {
		t.Errorf("registry = %s", db.Records[0].Registry)
	}
	if ty, err := db.Records[0].Type(); err != nil || !ty.DirectOwner() || ty.Registry != alloc.LACNIC {
		t.Errorf("NIC.br allocated should resolve via LACNIC: %v %v", ty, err)
	}
	if db.Records[1].Prefixes[0].String() != "2801:80::/32" {
		t.Errorf("v6 = %v", db.Records[1].Prefixes)
	}
}

func TestParseLACNICWrongZone(t *testing.T) {
	if _, err := ParseLACNIC(strings.NewReader(""), alloc.ARIN); err == nil {
		t.Error("ARIN accepted by LACNIC parser")
	}
}

func TestRoundTripRPSL(t *testing.T) {
	for _, reg := range []alloc.Registry{alloc.RIPE, alloc.APNIC, alloc.AFRINIC, alloc.KRNIC, alloc.TWNIC} {
		db := NewDatabase()
		db.Records = append(db.Records,
			Record{
				Prefixes: []netip.Prefix{netx.MustParse("193.0.0.0/21")},
				Registry: reg, Status: "ALLOCATED PA", NetName: "N1", Country: "DE",
				OrgName: "Example Networks GmbH", OrgID: "ORG-EX1",
				Updated: time.Date(2024, 6, 1, 10, 0, 0, 0, time.UTC),
			},
			Record{
				Prefixes: []netip.Prefix{netx.MustParse("2001:db8::/32")},
				Registry: reg, Status: "ALLOCATED-BY-RIR", NetName: "N2",
				OrgName: "Example Networks GmbH", OrgID: "ORG-EX1",
				Updated: time.Date(2024, 6, 2, 10, 0, 0, 0, time.UTC),
			},
		)
		if reg == alloc.APNIC || reg == alloc.KRNIC || reg == alloc.TWNIC {
			db.Records[0].Status = "ALLOCATED PORTABLE"
			db.Records[1].Status = "ALLOCATED PORTABLE"
		}
		db.Orgs["ORG-EX1"] = Org{ID: "ORG-EX1", Name: "Example Networks GmbH", Country: "DE"}
		var sb strings.Builder
		if err := WriteRPSL(&sb, db, reg); err != nil {
			t.Fatalf("%s: write: %v", reg, err)
		}
		back, err := ParseRPSL(strings.NewReader(sb.String()), reg)
		if err != nil {
			t.Fatalf("%s: parse: %v", reg, err)
		}
		back.ResolveOrgs()
		if len(back.Records) != 2 {
			t.Fatalf("%s: roundtrip records = %d", reg, len(back.Records))
		}
		for i := range back.Records {
			got, want := back.Records[i], db.Records[i]
			if got.Prefixes[0] != want.Prefixes[0] || got.Status != want.Status ||
				got.OrgName != want.OrgName || !got.Updated.Equal(want.Updated) {
				t.Errorf("%s: record %d roundtrip: got %+v want %+v", reg, i, got, want)
			}
		}
	}
}

func TestRoundTripARIN(t *testing.T) {
	db := NewDatabase()
	db.Records = append(db.Records, Record{
		Prefixes: []netip.Prefix{netx.MustParse("206.238.0.0/16")},
		Registry: alloc.ARIN, Status: "Allocation", NetName: "PSINET-B3",
		OrgName: "PSINet, Inc.", OrgID: "PSI", Country: "US",
		Updated: time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
	})
	var sb strings.Builder
	if err := WriteARIN(&sb, db); err != nil {
		t.Fatal(err)
	}
	back, err := ParseARIN(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 {
		t.Fatalf("roundtrip records = %d", len(back.Records))
	}
	g, w := back.Records[0], db.Records[0]
	if g.Prefixes[0] != w.Prefixes[0] || g.Status != w.Status || g.OrgName != w.OrgName || !g.Updated.Equal(w.Updated) {
		t.Errorf("roundtrip: got %+v want %+v", g, w)
	}
}

func TestRoundTripLACNIC(t *testing.T) {
	db := NewDatabase()
	db.Records = append(db.Records, Record{
		Prefixes: []netip.Prefix{netx.MustParse("200.160.0.0/20")},
		Registry: alloc.LACNIC, Status: "ALLOCATED",
		OrgName: "Acme Telecom S.A.", OrgID: "AR-ACME",
		Country: "AR", Updated: time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
	})
	var sb strings.Builder
	if err := WriteLACNIC(&sb, db); err != nil {
		t.Fatal(err)
	}
	back, err := ParseLACNIC(strings.NewReader(sb.String()), alloc.LACNIC)
	if err != nil {
		t.Fatal(err)
	}
	g, w := back.Records[0], db.Records[0]
	if g.Prefixes[0] != w.Prefixes[0] || g.Status != w.Status || g.OrgName != w.OrgName || !g.Updated.Equal(w.Updated) {
		t.Errorf("roundtrip: got %+v want %+v", g, w)
	}
}

func TestFlattenLatestWins(t *testing.T) {
	db := NewDatabase()
	p := netx.MustParse("10.0.0.0/16")
	db.Records = append(db.Records,
		Record{Prefixes: []netip.Prefix{p}, Registry: alloc.ARIN, Status: "Allocation",
			OrgName: "Old Corp", Updated: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)},
		Record{Prefixes: []netip.Prefix{p}, Registry: alloc.ARIN, Status: "Allocation",
			OrgName: "New Corp", Updated: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)},
		Record{Prefixes: []netip.Prefix{p}, Registry: alloc.ARIN, Status: "Reassignment",
			OrgName: "Customer Inc", Updated: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)},
	)
	entries := db.Flatten()
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (one per allocation type)", len(entries))
	}
	byStatus := map[string]Entry{}
	for _, e := range entries {
		byStatus[e.Status] = e
	}
	if byStatus["Allocation"].OrgName != "New Corp" {
		t.Errorf("latest record did not win: %q", byStatus["Allocation"].OrgName)
	}
	if byStatus["Reassignment"].OrgName != "Customer Inc" {
		t.Errorf("second type lost: %+v", entries)
	}
}

func TestFlattenDeterministicOrder(t *testing.T) {
	db := NewDatabase()
	for _, s := range []string{"11.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"} {
		db.Records = append(db.Records, Record{
			Prefixes: []netip.Prefix{netx.MustParse(s)}, Registry: alloc.ARIN,
			Status: "Allocation", OrgName: "X",
		})
	}
	entries := db.Flatten()
	for i := 1; i < len(entries); i++ {
		if netx.Compare(entries[i-1].Prefix, entries[i].Prefix) > 0 {
			t.Fatalf("entries out of order: %v before %v", entries[i-1].Prefix, entries[i].Prefix)
		}
	}
}

func TestMergeAndResolve(t *testing.T) {
	a := NewDatabase()
	a.Records = append(a.Records, Record{Prefixes: []netip.Prefix{netx.MustParse("10.0.0.0/8")},
		Registry: alloc.RIPE, Status: "ALLOCATED PA", OrgID: "ORG-1"})
	b := NewDatabase()
	b.Orgs["ORG-1"] = Org{ID: "ORG-1", Name: "Resolved Org"}
	a.Merge(b)
	a.ResolveOrgs()
	if a.Records[0].OrgName != "Resolved Org" {
		t.Errorf("resolve after merge: %q", a.Records[0].OrgName)
	}
}
