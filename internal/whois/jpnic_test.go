package whois

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

const jpnicSample = `# comment
203.180.0.0/16|EXAMPLE-NET|Example Communications KK|20240501
203.181.0.0/24|OTHER-NET|Other KK|20240502
`

func TestParseJPNICBulk(t *testing.T) {
	db, err := ParseJPNICBulk(strings.NewReader(jpnicSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 2 {
		t.Fatalf("records = %d", len(db.Records))
	}
	r := db.Records[0]
	if r.Registry != alloc.JPNIC || r.Status != "" || r.OrgName != "Example Communications KK" {
		t.Errorf("record = %+v", r)
	}
	if r.Country != "JP" {
		t.Errorf("country = %q", r.Country)
	}
	if r.Updated.Format("20060102") != "20240501" {
		t.Errorf("updated = %v", r.Updated)
	}
}

func TestParseJPNICBulkErrors(t *testing.T) {
	if _, err := ParseJPNICBulk(strings.NewReader("only|two\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ParseJPNICBulk(strings.NewReader("banana|X|Y|20240101\n")); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestRoundTripJPNICBulk(t *testing.T) {
	db := NewDatabase()
	db.Records = append(db.Records, Record{
		Prefixes: []netip.Prefix{netx.MustParse("203.180.0.0/16")},
		Registry: alloc.JPNIC, NetName: "EXAMPLE-NET", OrgName: "Example KK",
		Country: "JP", Updated: time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
	})
	var sb strings.Builder
	if err := WriteJPNICBulk(&sb, db); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJPNICBulk(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	g := back.Records[0]
	if g.Prefixes[0] != db.Records[0].Prefixes[0] || g.OrgName != "Example KK" {
		t.Errorf("roundtrip = %+v", g)
	}
}

func TestWhoisServerAndClient(t *testing.T) {
	srv := NewServer()
	p := netx.MustParse("203.180.0.0/16")
	srv.Register(p, "Example KK", "EXAMPLE-NET", "ALLOCATED PORTABLE")
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Addr: addr, Timeout: 5 * time.Second}
	status, err := c.QueryAllocationType(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if status != "ALLOCATED PORTABLE" {
		t.Errorf("status = %q", status)
	}

	// Unknown prefix: server answers "no match", client reports error.
	if _, err := c.QueryAllocationType(context.Background(), netx.MustParse("198.51.100.0/24")); err == nil {
		t.Error("unknown block did not error")
	}

	// Raw RFC3912 query returns the full body.
	body, err := c.Query(context.Background(), p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "[Organization]       Example KK") {
		t.Errorf("body = %q", body)
	}
	// Garbage query handled gracefully.
	body, err = c.Query(context.Background(), "not a prefix")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "error") {
		t.Errorf("garbage query body = %q", body)
	}
}

func TestEnrichJPNIC(t *testing.T) {
	srv := NewServer()
	p1 := netx.MustParse("203.180.0.0/16")
	p2 := netx.MustParse("203.181.0.0/24")
	srv.Register(p1, "Example KK", "N1", "ALLOCATED PORTABLE")
	srv.Register(p2, "Other KK", "N2", "ASSIGNED NON-PORTABLE")
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	db, err := ParseJPNICBulk(strings.NewReader(jpnicSample))
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Addr: addr, Timeout: 5 * time.Second}
	if err := EnrichJPNIC(context.Background(), db, c); err != nil {
		t.Fatal(err)
	}
	if db.Records[0].Status != "ALLOCATED PORTABLE" {
		t.Errorf("record 0 status = %q", db.Records[0].Status)
	}
	if db.Records[1].Status != "ASSIGNED NON-PORTABLE" {
		t.Errorf("record 1 status = %q", db.Records[1].Status)
	}
	// Types must now resolve through APNIC's vocabulary.
	ty, err := db.Records[0].Type()
	if err != nil || !ty.DirectOwner() {
		t.Errorf("enriched type = %v %v", ty, err)
	}
}

func TestEnrichJPNICErrorPropagates(t *testing.T) {
	srv := NewServer()
	// Register nothing: every query will fail.
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	db, err := ParseJPNICBulk(strings.NewReader(jpnicSample))
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Addr: addr, Timeout: 5 * time.Second}
	if err := EnrichJPNIC(context.Background(), db, c); err == nil {
		t.Error("enrichment with missing blocks did not error")
	}
}

func TestJPNICTypesFileRoundTrip(t *testing.T) {
	types := map[netip.Prefix]string{
		netx.MustParse("203.180.0.0/16"): "ALLOCATED PORTABLE",
		netx.MustParse("203.181.0.0/24"): "ASSIGNED NON-PORTABLE",
	}
	var sb strings.Builder
	if err := WriteJPNICTypes(&sb, types); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJPNICTypes(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("roundtrip = %v", back)
	}
	for p, s := range types {
		if back[p] != s {
			t.Errorf("types[%s] = %q, want %q", p, back[p], s)
		}
	}
	// Apply to a bulk database.
	db, err := ParseJPNICBulk(strings.NewReader(jpnicSample))
	if err != nil {
		t.Fatal(err)
	}
	ApplyJPNICTypes(db, back)
	if db.Records[0].Status != "ALLOCATED PORTABLE" || db.Records[1].Status != "ASSIGNED NON-PORTABLE" {
		t.Errorf("apply failed: %+v", db.Records)
	}
}

func TestClientDialFailure(t *testing.T) {
	c := &Client{Addr: "127.0.0.1:1", Timeout: 500 * time.Millisecond} // nothing listens on port 1
	if _, err := c.Query(context.Background(), "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestClientContextCancelled(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Addr: addr}
	if _, err := c.Query(ctx, "x"); err == nil {
		t.Error("cancelled context query succeeded")
	}
}

func TestExtractAllocationType(t *testing.T) {
	body := "a. [Network Number] 1.0.0.0/16\r\nm. [Allocation Type]   ASSIGNED PORTABLE \r\n"
	got, ok := extractAllocationType(body)
	if !ok || got != "ASSIGNED PORTABLE" {
		t.Errorf("extract = %q,%v", got, ok)
	}
	if _, ok := extractAllocationType("% no match\r\n"); ok {
		t.Error("extracted from no-match body")
	}
}

func TestServerCloseIdempotentUsage(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Queries after close must fail to connect.
	c := &Client{Addr: addr, Timeout: 500 * time.Millisecond}
	if _, err := c.Query(context.Background(), "x"); err == nil {
		t.Error("query after close succeeded")
	}
}
