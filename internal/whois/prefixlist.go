package whois

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strings"
)

// Plain prefix-list files: one CIDR per line, '#' comments. Used for the
// ARIN legacy non-signer list (the analogue of ARIN's published "Resources
// Under RSA" report, which Prefix2Org uses to mark Allocation-Legacy
// space) and for ground-truth IP range lists.

// ARINLegacyFile names, inside a data directory's whois/ subdirectory,
// the list of ARIN legacy blocks whose holders have NOT signed a registry
// services agreement (and therefore cannot issue RPKI certificates).
const ARINLegacyFile = "arin-legacy-nonsigners.db"

// ParsePrefixList reads one canonical prefix per line.
func ParsePrefixList(r io.Reader) ([]netip.Prefix, error) {
	var out []netip.Prefix
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := netip.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("whois: prefix list line %d: %w", lineNo, err)
		}
		out = append(out, p.Masked())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WritePrefixList writes prefixes one per line in the given order.
func WritePrefixList(w io.Writer, header string, prefixes []netip.Prefix) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		fmt.Fprintf(bw, "# %s\n", header)
	}
	for _, p := range prefixes {
		fmt.Fprintln(bw, p)
	}
	return bw.Flush()
}
