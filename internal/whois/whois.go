// Package whois models Regional/National Internet Registry WHOIS data and
// implements bulk parsers and writers for each registry's native flavour.
//
// The five RIRs (and the NIRs whose bulk data Prefix2Org consumes) publish
// address-block registrations in mutually incompatible formats:
//
//   - RIPE, APNIC, AFRINIC, KRNIC, TWNIC: RPSL-style paragraph objects
//     (inetnum / inet6num / organisation), with the organization name
//     either inline in descr (APNIC, AFRINIC, KRNIC, TWNIC) or behind an
//     org: reference that must be resolved against organisation objects
//     (RIPE) — see ParseRPSL / WriteRPSL.
//   - ARIN: NetRange blocks with NetType and OrgName fields — see
//     ParseARIN / WriteARIN.
//   - LACNIC (and NIC.br / NIC.mx): compact inetnum records in CIDR
//     notation with owner/ownerid fields — see ParseLACNIC / WriteLACNIC.
//   - JPNIC: bulk data without the allocation type; the type must be
//     fetched through individual WHOIS (RFC 3912) queries per block — see
//     ParseJPNICBulk, Client and Server.
//
// All parsers normalize into the same Record model, expand inclusive
// address ranges into canonical CIDR prefixes, and resolve organization
// references, so the rest of the pipeline is registry-agnostic. When a
// registry publishes several records for the same (prefix, allocation
// type), the latest by last-updated wins (§4.2 of the paper).
package whois

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// Record is one address-block registration from a registry database.
type Record struct {
	// Prefixes are the canonical CIDR blocks the registration covers. A
	// registration given as an inclusive range (ARIN NetRange, RIPE
	// inetnum) may expand to several CIDRs.
	Prefixes []netip.Prefix
	// Registry is the database the record came from (an RIR or NIR).
	Registry alloc.Registry
	// Status is the raw allocation-type keyword (status / NetType field).
	// It may be empty for JPNIC bulk records before enrichment.
	Status string
	// OrgName is the resolved organization name. For RIPE-style records
	// this is the org-name of the referenced organisation object.
	OrgName string
	// OrgID is the raw organization reference, when the registry uses
	// indirection (RIPE org:, ARIN OrgId, LACNIC ownerid).
	OrgID string
	// NetName is the registry's network handle (netname / NetName).
	NetName string
	// Country is the ISO-3166 country code, when present.
	Country string
	// Updated is the record's last-modified timestamp, used to select the
	// latest record when duplicates exist.
	Updated time.Time
}

// Family returns the address family of the record's blocks.
func (r *Record) Family() alloc.Family {
	if len(r.Prefixes) > 0 && !r.Prefixes[0].Addr().Is4() {
		return alloc.IPv6
	}
	return alloc.IPv4
}

// Type resolves the record's Status keyword against the allocation-type
// taxonomy.
func (r *Record) Type() (alloc.Type, error) {
	return alloc.Lookup(r.Registry, r.Status, r.Family())
}

// Org is an organisation object (RIPE organisation:, ARIN Org record).
type Org struct {
	ID      string
	Name    string
	Country string
}

// Database holds the parsed contents of one or more registry databases.
type Database struct {
	Records []Record
	// Orgs indexes organisation objects by ID for reference resolution.
	Orgs map[string]Org
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Orgs: map[string]Org{}}
}

// Merge appends all records and organisation objects of other into db.
func (db *Database) Merge(other *Database) {
	db.Records = append(db.Records, other.Records...)
	for id, o := range other.Orgs {
		db.Orgs[id] = o
	}
}

// ResolveOrgs fills in empty OrgName fields from the Orgs index (RIPE-style
// indirection). Records whose OrgID is unknown keep an empty name; the
// pipeline counts them as unmapped.
func (db *Database) ResolveOrgs() {
	for i := range db.Records {
		r := &db.Records[i]
		if r.OrgName == "" && r.OrgID != "" {
			if o, ok := db.Orgs[r.OrgID]; ok {
				r.OrgName = o.Name
			}
		}
	}
}

// Entry is one (prefix, allocation type) registration after flattening:
// ranges expanded to CIDRs, organization references resolved, duplicates
// collapsed to the latest record.
type Entry struct {
	Prefix   netip.Prefix
	Registry alloc.Registry
	Status   string
	OrgName  string
	Updated  time.Time
}

// FlattenStats accounts for one Flatten pass: Records in, Expanded
// (prefix, status) pairs after range expansion, Entries surviving the
// latest-record-wins dedup. Expanded - Entries is the number of
// de-duplicated WHOIS registrations.
type FlattenStats struct {
	Records  int
	Expanded int
	Entries  int
}

// Deduped returns the number of registrations dropped by the
// latest-record-wins rule.
func (s FlattenStats) Deduped() int { return s.Expanded - s.Entries }

// Flatten expands db into per-prefix entries. For each (prefix, normalized
// status) pair only the most recently updated record survives — the
// paper's rule for handling re-registered blocks. Entries are returned in
// canonical prefix order, then by status, for determinism.
func (db *Database) Flatten() []Entry {
	entries, _ := db.FlattenWithStats()
	return entries
}

// FlattenWithStats is Flatten plus the dedup accounting the pipeline
// trace reports.
func (db *Database) FlattenWithStats() ([]Entry, FlattenStats) {
	db.ResolveOrgs()
	type key struct {
		p      netip.Prefix
		status string
	}
	best := map[key]Entry{}
	stats := FlattenStats{Records: len(db.Records)}
	for _, r := range db.Records {
		for _, p := range r.Prefixes {
			stats.Expanded++
			k := key{p, normStatus(r.Status)}
			e := Entry{Prefix: p, Registry: r.Registry, Status: r.Status, OrgName: r.OrgName, Updated: r.Updated}
			if prev, ok := best[k]; !ok || e.Updated.After(prev.Updated) {
				best[k] = e
			}
		}
	}
	out := make([]Entry, 0, len(best))
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := netx.Compare(out[i].Prefix, out[j].Prefix); c != 0 {
			return c < 0
		}
		return normStatus(out[i].Status) < normStatus(out[j].Status)
	})
	stats.Entries = len(out)
	return out, stats
}

func normStatus(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(strings.NewReplacer("_", " ", "-", " ").Replace(s))), " ")
}

// parseTime accepts the timestamp layouts seen across registry dumps.
func parseTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	layouts := []string{
		time.RFC3339,          // RIPE last-modified: 2024-06-01T10:00:00Z
		"2006-01-02",          // ARIN Updated
		"20060102",            // LACNIC changed, RPSL changed date
		"2006-01-02 15:04:05", // misc
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return t, nil
		}
	}
	// RPSL "changed: email 20240601" style: take the last field.
	fields := strings.Fields(s)
	if len(fields) > 1 {
		if t, err := time.Parse("20060102", fields[len(fields)-1]); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("whois: unrecognized timestamp %q", s)
}

// parseBlockSpec parses an address-block specification that is either a
// CIDR prefix ("193.0.0.0/21") or an inclusive range
// ("193.0.0.0 - 193.0.7.255"), returning canonical CIDRs.
func parseBlockSpec(s string) ([]netip.Prefix, error) {
	s = strings.TrimSpace(s)
	// Ranges: "a - b" for either family, or "a-b" for IPv4 (IPv6 addresses
	// contain no '-' so a bare '-' is unambiguous there too, but ':' makes
	// the spaced form the only one registries emit).
	sep := ""
	switch {
	case strings.Contains(s, " - "):
		sep = " - "
	case !strings.Contains(s, ":") && strings.Contains(s, "-"):
		sep = "-"
	}
	if sep != "" {
		first, last, _ := strings.Cut(s, sep)
		fa, err1 := netip.ParseAddr(strings.TrimSpace(first))
		la, err2 := netip.ParseAddr(strings.TrimSpace(last))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("whois: unparseable range %q", s)
		}
		return netx.ParseRange(fa, la)
	}
	if strings.Contains(s, "/") {
		p, err := netx.ParsePrefix(s)
		if err != nil {
			return nil, err
		}
		return []netip.Prefix{p}, nil
	}
	// Bare address: treat as a host block.
	a, err := netip.ParseAddr(s)
	if err != nil {
		return nil, fmt.Errorf("whois: unparseable block spec %q", s)
	}
	return []netip.Prefix{netip.PrefixFrom(a, a.BitLen())}, nil
}

func sortPrefixes(ps []netip.Prefix) { netx.Sort(ps) }
