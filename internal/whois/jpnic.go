package whois

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

// JPNIC's bulk WHOIS data does not include the allocation type of a block
// (§4.2): the pipeline must perform an individual WHOIS query per address
// block to retrieve it. This file implements the three pieces of that
// path: the bulk parser, an RFC 3912 WHOIS client, and a server that the
// synthetic world (and tests) stand up to answer those queries the way
// whois.nic.ad.jp would.

// ParseJPNICBulk parses JPNIC's bulk flavour: one pipe-separated record
// per line, without the allocation type.
//
//	203.180.0.0/16|EXAMPLE-NET|Example Communications KK|20240501
//
// Records come back with Status == ""; EnrichJPNIC fills it in via
// individual queries.
func ParseJPNICBulk(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return nil, fmt.Errorf("whois: jpnic line %d: want at least 3 fields, got %d", lineNo, len(parts))
		}
		ps, err := parseBlockSpec(parts[0])
		if err != nil {
			return nil, fmt.Errorf("whois: jpnic line %d: %w", lineNo, err)
		}
		rec := Record{
			Prefixes: ps,
			Registry: alloc.JPNIC,
			NetName:  strings.TrimSpace(parts[1]),
			OrgName:  strings.TrimSpace(parts[2]),
			Country:  "JP",
		}
		if len(parts) > 3 {
			if t, err := parseTime(parts[3]); err == nil {
				rec.Updated = t
			}
		}
		db.Records = append(db.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: jpnic scan: %w", err)
	}
	return db, nil
}

// WriteJPNICBulk serializes db in the JPNIC bulk flavour (allocation types
// are intentionally omitted — that is the JPNIC quirk being modelled).
func WriteJPNICBulk(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# JPNIC bulk snapshot (synthetic); allocation types via whois queries")
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			fmt.Fprintf(bw, "%s|%s|%s|%s\n", p, rec.NetName, rec.OrgName, rec.Updated.UTC().Format("20060102"))
		}
	}
	return bw.Flush()
}

// Client performs individual RFC 3912 WHOIS queries: connect, send the
// query line, read until EOF.
type Client struct {
	// Addr is the host:port of the WHOIS server.
	Addr string
	// Timeout bounds each query (dial + read). Zero means 10 seconds.
	Timeout time.Duration
	// Dial allows tests to substitute the transport. Nil uses net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(ctx, "tcp", c.Addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", c.Addr)
}

// Query sends q and returns the raw response body.
func (c *Client) Query(ctx context.Context, q string) (string, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := c.dial(ctx)
	if err != nil {
		return "", fmt.Errorf("whois: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return "", fmt.Errorf("whois: set deadline: %w", err)
		}
	}
	if _, err := io.WriteString(conn, q+"\r\n"); err != nil {
		return "", fmt.Errorf("whois: send query: %w", err)
	}
	body, err := io.ReadAll(conn)
	if err != nil {
		return "", fmt.Errorf("whois: read response: %w", err)
	}
	return string(body), nil
}

// QueryAllocationType queries the JPNIC-style server for prefix and
// extracts the allocation-type field from the response.
func (c *Client) QueryAllocationType(ctx context.Context, prefix netip.Prefix) (string, error) {
	body, err := c.Query(ctx, prefix.String())
	if err != nil {
		return "", err
	}
	status, ok := extractAllocationType(body)
	if !ok {
		return "", fmt.Errorf("whois: no allocation type in response for %s", prefix)
	}
	return status, nil
}

func extractAllocationType(body string) (string, bool) {
	for _, line := range strings.Split(body, "\n") {
		if i := strings.Index(line, "[Allocation Type]"); i >= 0 {
			return strings.TrimSpace(line[i+len("[Allocation Type]"):]), true
		}
	}
	return "", false
}

// EnrichJPNIC fills in the Status of every JPNIC record in db by querying
// the given client, mimicking the paper's per-block queries against the
// JPNIC WHOIS service. Queries for the blocks run with bounded
// concurrency; the first error aborts the remaining work.
func EnrichJPNIC(ctx context.Context, db *Database, c *Client) error {
	type job struct{ idx int }
	var jobs []job
	for i := range db.Records {
		r := &db.Records[i]
		if r.Registry == alloc.JPNIC && r.Status == "" && len(r.Prefixes) > 0 {
			jobs = append(jobs, job{i})
		}
	}
	const workers = 8
	sem := make(chan struct{}, workers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, j := range jobs {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			status, err := c.QueryAllocationType(ctx, db.Records[idx].Prefixes[0])
			if err != nil {
				mu.Lock()
				if firstErr == nil && !errors.Is(err, context.Canceled) {
					firstErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
			db.Records[idx].Status = status
		}(j.idx)
	}
	wg.Wait()
	return firstErr
}

// Server is a minimal RFC 3912 WHOIS responder that answers JPNIC-style
// block queries with the block's allocation type. The synthetic world
// registers every JPNIC block before serving.
type Server struct {
	mu     sync.RWMutex
	blocks map[netip.Prefix]serverBlock

	lis  net.Listener
	done chan struct{}
	wg   sync.WaitGroup
}

type serverBlock struct {
	orgName string
	netName string
	status  string
}

// NewServer returns a server with an empty block table.
func NewServer() *Server {
	return &Server{blocks: map[netip.Prefix]serverBlock{}, done: make(chan struct{})}
}

// Register adds or replaces the served data for prefix.
func (s *Server) Register(prefix netip.Prefix, orgName, netName, status string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[prefix.Masked()] = serverBlock{orgName: orgName, netName: netName, status: status}
}

// Start begins serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("whois: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.done)
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error; keep serving.
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	//p2olint:ignore determinism TCP deadline on a live whois session, never part of build output
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	rd := bufio.NewReader(conn)
	line, err := rd.ReadString('\n')
	if err != nil && line == "" {
		return
	}
	q := strings.TrimSpace(line)
	var resp strings.Builder
	resp.WriteString("% JPNIC WHOIS (synthetic)\r\n")
	p, perr := netip.ParsePrefix(q)
	if perr != nil {
		fmt.Fprintf(&resp, "%% error: unparseable query %q\r\n", q)
	} else {
		s.mu.RLock()
		b, ok := s.blocks[p.Masked()]
		s.mu.RUnlock()
		if !ok {
			resp.WriteString("% no match\r\n")
		} else {
			fmt.Fprintf(&resp, "a. [Network Number]     %s\r\n", p.Masked())
			fmt.Fprintf(&resp, "b. [Network Name]       %s\r\n", b.netName)
			fmt.Fprintf(&resp, "f. [Organization]       %s\r\n", b.orgName)
			fmt.Fprintf(&resp, "m. [Allocation Type]    %s\r\n", b.status)
		}
	}
	_, _ = io.WriteString(conn, resp.String())
}
