package whois

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/obs"
)

// Bulk-file naming inside a data directory's whois/ subdirectory. Each
// registry's snapshot is stored in its native flavour.
var registryFiles = []struct {
	Registry alloc.Registry
	File     string
}{
	{alloc.ARIN, "arin.db"},
	{alloc.RIPE, "ripe.db"},
	{alloc.APNIC, "apnic.db"},
	{alloc.AFRINIC, "afrinic.db"},
	{alloc.LACNIC, "lacnic.db"},
	{alloc.KRNIC, "krnic.db"},
	{alloc.TWNIC, "twnic.db"},
	{alloc.JPNIC, "jpnic.db"},
	{alloc.NICBR, "nicbr.db"},
	{alloc.NICMX, "nicmx.db"},
}

// JPNICTypesFile is the cache of per-block allocation types retrieved via
// individual JPNIC WHOIS queries (the paper performs these queries and we
// persist the answers so offline runs need no live server).
const JPNICTypesFile = "jpnic-alloctypes.db"

// LoadOptions configures LoadDir.
type LoadOptions struct {
	// JPNICClient, when non-nil, is used to query allocation types for
	// JPNIC blocks that are missing from the types cache file.
	JPNICClient *Client

	// Workers bounds how many registry bulk files parse concurrently.
	// 0 and negative values normalize to runtime.GOMAXPROCS(0); 1
	// parses sequentially. The de-duplicating merge always runs
	// single-threaded in fixed registry order, so the merged database
	// is identical for every worker count.
	Workers int
}

func (o LoadOptions) workerCount() int {
	if o.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Sources retains the per-registry parse results of one LoadDir run so
// an incremental reload can re-parse only the files that actually
// changed and re-merge the rest from memory. The retained databases are
// never mutated after parsing: Merge copies record values and
// ResolveOrgs/ApplyJPNICTypes touch only the merged copies, so slots
// can be shared freely across reloads.
type Sources struct {
	parsed   []*Database // one slot per registryFiles entry; nil = file absent
	types    map[netip.Prefix]string
	hasTypes bool
}

// LoadDir reads every registry bulk file present under dir/whois and
// returns the merged database. Missing files are skipped (a data
// directory need not contain all registries); malformed files are errors.
// The per-registry files parse concurrently (see LoadOptions.Workers);
// errors are reported for the first failing registry in file order.
// JPNIC records are enriched with allocation types from the cache file
// and, if provided, the live client.
func LoadDir(ctx context.Context, dir string, opts LoadOptions) (*Database, error) {
	db, _, err := LoadDirSources(ctx, dir, opts, nil, nil)
	return db, err
}

// LoadDirSources is LoadDir at re-parse granularity. When prev is
// non-nil, a registry file whose slash-relative path ("whois/ripe.db")
// changed reports false for is re-used from prev instead of being read
// from disk; only changed files re-parse. The de-duplicating merge runs
// over all slots either way, so the merged database is identical to a
// cold LoadDir of the same directory. The returned Sources snapshot
// feeds the next incremental call.
func LoadDirSources(ctx context.Context, dir string, opts LoadOptions, prev *Sources, changed func(relPath string) bool) (*Database, *Sources, error) {
	wdir := filepath.Join(dir, "whois")
	logger := obs.Logger("whois")
	reg := obs.Default()
	reuse := func(relPath string) bool {
		return prev != nil && changed != nil && !changed(relPath)
	}

	// Fan out: each registry file parses into its own slot; sem bounds
	// the parallelism. Missing files leave a nil slot.
	parsed := make([]*Database, len(registryFiles))
	fresh := make([]bool, len(registryFiles))
	errs := make([]error, len(registryFiles))
	sem := make(chan struct{}, opts.workerCount())
	var wg sync.WaitGroup
	for i, rf := range registryFiles {
		if reuse("whois/" + rf.File) {
			parsed[i] = prev.parsed[i]
			continue
		}
		fresh[i] = true
		wg.Add(1)
		go func(i int, registry alloc.Registry, file string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			path := filepath.Join(wdir, file)
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				return
			}
			if err != nil {
				errs[i] = fmt.Errorf("whois: open %s: %w", path, err)
				return
			}
			db, perr := parseRegistryFile(f, registry)
			cerr := f.Close()
			if perr != nil {
				errs[i] = fmt.Errorf("whois: parse %s: %w", path, perr)
				return
			}
			if cerr != nil {
				errs[i] = fmt.Errorf("whois: close %s: %w", path, cerr)
				return
			}
			parsed[i] = db
		}(i, rf.Registry, rf.File)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// Merge single-threaded, in fixed registry order: the last-updated
	// de-duplication inside Merge is order-sensitive bookkeeping that
	// must stay deterministic. Parse counters cover only freshly parsed
	// files, so reloads account for work actually done.
	merged := NewDatabase()
	registries := 0
	for i, rf := range registryFiles {
		db := parsed[i]
		if db == nil {
			continue
		}
		registries++
		if fresh[i] {
			reg.Counter(obs.Label("whois_records_parsed_total", "registry", string(rf.Registry))).Add(int64(len(db.Records)))
			logger.Debug("registry file parsed",
				"registry", string(rf.Registry), "path", filepath.Join(wdir, rf.File),
				"records", len(db.Records), "orgs", len(db.Orgs))
		}
		merged.Merge(db)
	}
	src := &Sources{parsed: parsed}
	// Enrich JPNIC allocation types: cache file first, then live queries.
	if reuse("whois/" + JPNICTypesFile) {
		src.types, src.hasTypes = prev.types, prev.hasTypes
	} else {
		typesPath := filepath.Join(wdir, JPNICTypesFile)
		if f, err := os.Open(typesPath); err == nil {
			cache, perr := ParseJPNICTypes(f)
			f.Close()
			if perr != nil {
				return nil, nil, fmt.Errorf("whois: parse %s: %w", typesPath, perr)
			}
			src.types, src.hasTypes = cache, true
		} else if !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("whois: open %s: %w", typesPath, err)
		}
	}
	if src.hasTypes {
		ApplyJPNICTypes(merged, src.types)
	}
	if opts.JPNICClient != nil {
		if err := EnrichJPNIC(ctx, merged, opts.JPNICClient); err != nil {
			return nil, nil, fmt.Errorf("whois: jpnic enrichment: %w", err)
		}
	}
	merged.ResolveOrgs()
	// Per-registry skip accounting: records whose allocation type cannot
	// be resolved are invisible to ownership resolution downstream.
	skipped := map[alloc.Registry]int{}
	for i := range merged.Records {
		if _, err := merged.Records[i].Type(); err != nil {
			skipped[merged.Records[i].Registry]++
		}
	}
	totalSkipped := 0
	for r, n := range skipped {
		totalSkipped += n
		reg.Counter(obs.Label("whois_records_skipped_total", "registry", string(r))).Add(int64(n))
	}
	logger.Info("whois databases loaded",
		"registries", registries, "records", len(merged.Records),
		"orgs", len(merged.Orgs), "unresolvable_type", totalSkipped)
	return merged, src, nil
}

func parseRegistryFile(r io.Reader, reg alloc.Registry) (*Database, error) {
	switch reg {
	case alloc.ARIN:
		return ParseARIN(r)
	case alloc.RIPE, alloc.APNIC, alloc.AFRINIC, alloc.KRNIC, alloc.TWNIC:
		return ParseRPSL(r, reg)
	case alloc.LACNIC, alloc.NICBR, alloc.NICMX:
		return ParseLACNIC(r, reg)
	case alloc.JPNIC:
		return ParseJPNICBulk(r)
	default:
		return nil, fmt.Errorf("whois: no parser for registry %s", reg)
	}
}

// WriteDir serializes per-registry databases into dir/whois in each
// registry's native flavour. dbs maps registry to its database.
func WriteDir(dir string, dbs map[alloc.Registry]*Database, jpnicTypes map[netip.Prefix]string) error {
	wdir := filepath.Join(dir, "whois")
	if err := os.MkdirAll(wdir, 0o755); err != nil {
		return fmt.Errorf("whois: mkdir %s: %w", wdir, err)
	}
	for _, rf := range registryFiles {
		db, ok := dbs[rf.Registry]
		if !ok {
			continue
		}
		path := filepath.Join(wdir, rf.File)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("whois: create %s: %w", path, err)
		}
		werr := writeRegistryFile(f, db, rf.Registry)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("whois: write %s: %w", path, werr)
		}
		if cerr != nil {
			return fmt.Errorf("whois: close %s: %w", path, cerr)
		}
	}
	if len(jpnicTypes) > 0 {
		path := filepath.Join(wdir, JPNICTypesFile)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("whois: create %s: %w", path, err)
		}
		werr := WriteJPNICTypes(f, jpnicTypes)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

func writeRegistryFile(w io.Writer, db *Database, reg alloc.Registry) error {
	switch reg {
	case alloc.ARIN:
		return WriteARIN(w, db)
	case alloc.RIPE, alloc.APNIC, alloc.AFRINIC, alloc.KRNIC, alloc.TWNIC:
		return WriteRPSL(w, db, reg)
	case alloc.LACNIC, alloc.NICBR, alloc.NICMX:
		return WriteLACNIC(w, db)
	case alloc.JPNIC:
		return WriteJPNICBulk(w, db)
	default:
		return fmt.Errorf("whois: no writer for registry %s", reg)
	}
}

// ParseJPNICTypes reads the allocation-type cache: "prefix|status" lines.
func ParseJPNICTypes(r io.Reader) (map[netip.Prefix]string, error) {
	out := map[netip.Prefix]string{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		spec, status, ok := strings.Cut(line, "|")
		if !ok {
			return nil, fmt.Errorf("whois: jpnic types line %d: malformed %q", lineNo, line)
		}
		p, err := netip.ParsePrefix(strings.TrimSpace(spec))
		if err != nil {
			return nil, fmt.Errorf("whois: jpnic types line %d: %w", lineNo, err)
		}
		out[p.Masked()] = strings.TrimSpace(status)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJPNICTypes writes the allocation-type cache in deterministic order.
func WriteJPNICTypes(w io.Writer, types map[netip.Prefix]string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# JPNIC per-block allocation types (whois query cache)")
	keys := make([]netip.Prefix, 0, len(types))
	for p := range types {
		keys = append(keys, p)
	}
	sortPrefixes(keys)
	for _, p := range keys {
		fmt.Fprintf(bw, "%s|%s\n", p, types[p])
	}
	return bw.Flush()
}

// ApplyJPNICTypes fills Status on JPNIC records from the cache.
func ApplyJPNICTypes(db *Database, types map[netip.Prefix]string) {
	for i := range db.Records {
		r := &db.Records[i]
		if r.Registry != alloc.JPNIC || r.Status != "" || len(r.Prefixes) == 0 {
			continue
		}
		if s, ok := types[r.Prefixes[0]]; ok {
			r.Status = s
		}
	}
}
