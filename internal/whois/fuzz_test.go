package whois

import (
	"strings"
	"testing"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

func FuzzParseRPSL(f *testing.F) {
	f.Add(ripeSample)
	f.Add(apnicSample)
	f.Add("inetnum: 10.0.0.0 - 10.0.0.255\nstatus: ALLOCATED PA\n")
	f.Add("")
	f.Add("%% comment only\n")
	f.Fuzz(func(t *testing.T, data string) {
		db, err := ParseRPSL(strings.NewReader(data), alloc.RIPE)
		if err != nil {
			return
		}
		// Whatever parsed must flatten and re-serialize without panicking.
		_ = db.Flatten()
		var sb strings.Builder
		_ = WriteRPSL(&sb, db, alloc.RIPE)
	})
}

func FuzzParseARIN(f *testing.F) {
	f.Add(arinSample)
	f.Add("NetRange: 10.0.0.0 - 10.0.0.255\nNetType: Allocation\nOrgName: X\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		db, err := ParseARIN(strings.NewReader(data))
		if err != nil {
			return
		}
		_ = db.Flatten()
		var sb strings.Builder
		_ = WriteARIN(&sb, db)
	})
}

func FuzzParseLACNIC(f *testing.F) {
	f.Add(lacnicSample)
	f.Add("inetnum: 200.160.0.0/20\nstatus: allocated\nowner: X\n")
	f.Add("inet6num: 2801:80::/32\nstatus: assigned\n")
	f.Add("")
	f.Add("% comment only\n")
	f.Fuzz(func(t *testing.T, data string) {
		db, err := ParseLACNIC(strings.NewReader(data), alloc.LACNIC)
		if err != nil {
			return
		}
		_ = db.Flatten()
		var sb strings.Builder
		_ = WriteLACNIC(&sb, db)
	})
}

func FuzzParsePrefixList(f *testing.F) {
	f.Add("10.0.0.0/8\n2001:db8::/32\n")
	f.Add("# comment\n\n192.0.2.0/24\n")
	f.Add("not-a-prefix\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		ps, err := ParsePrefixList(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range ps {
			if !p.IsValid() {
				t.Fatalf("ParsePrefixList returned invalid prefix from %q", data)
			}
			if p != p.Masked() {
				t.Fatalf("ParsePrefixList returned non-canonical %s from %q", p, data)
			}
		}
		var sb strings.Builder
		if err := WritePrefixList(&sb, "", ps); err != nil {
			t.Fatalf("WritePrefixList on parsed output: %v", err)
		}
	})
}

func FuzzParseBlockSpec(f *testing.F) {
	for _, s := range []string{"10.0.0.0/8", "10.0.0.0 - 10.0.3.255", "2001:db8::/32", "x", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		ps, err := parseBlockSpec(data)
		if err != nil {
			return
		}
		for _, p := range ps {
			if !p.IsValid() {
				t.Fatalf("parseBlockSpec(%q) returned invalid prefix", data)
			}
			if p != p.Masked() {
				t.Fatalf("parseBlockSpec(%q) returned non-canonical %s", data, p)
			}
		}
	})
}
