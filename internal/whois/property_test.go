package whois

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

// randomRecord fabricates a plausible record for a registry. Names use a
// constrained alphabet (registry data is ASCII-ish; the writers are not
// designed to escape arbitrary bytes).
func randomRecord(rng *rand.Rand, reg alloc.Registry) Record {
	words := []string{"Acme", "Nordic", "Pacific", "Data", "Net", "Star",
		"Telecom", "Cloud", "Systems", "Group", "GmbH", "Ltd", "Inc", "S.A.",
		"Communications", "Hosting", "Online"}
	nameLen := 1 + rng.Intn(4)
	parts := make([]string, nameLen)
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	name := strings.Join(parts, " ")
	var p netip.Prefix
	if rng.Intn(4) == 0 {
		var a [16]byte
		a[0], a[1] = 0x2a, 0x00
		a[2], a[3] = byte(rng.Intn(256)), byte(rng.Intn(256))
		p = netip.PrefixFrom(netip.AddrFrom16(a), 32+rng.Intn(17)).Masked()
	} else {
		var a [4]byte
		a[0] = byte(1 + rng.Intn(220))
		a[1], a[2] = byte(rng.Intn(256)), byte(rng.Intn(256))
		p = netip.PrefixFrom(netip.AddrFrom4(a), 8+rng.Intn(17)).Masked()
	}
	statusByZone := map[alloc.Registry][]string{
		alloc.ARIN:    {"Allocation", "Reallocation", "Reassignment"},
		alloc.RIPE:    {"ALLOCATED PA", "ASSIGNED PI", "ASSIGNED PA", "SUB-ALLOCATED PA"},
		alloc.APNIC:   {"ALLOCATED PORTABLE", "ASSIGNED NON-PORTABLE"},
		alloc.LACNIC:  {"ALLOCATED", "REASSIGNED"},
		alloc.AFRINIC: {"ALLOCATED PA", "ASSIGNED PA"},
	}
	zone := alloc.Parent(reg)
	statuses := statusByZone[zone]
	status := statuses[rng.Intn(len(statuses))]
	if !p.Addr().Is4() && zone == alloc.RIPE {
		status = "ALLOCATED-BY-RIR"
	}
	return Record{
		Prefixes: []netip.Prefix{p},
		Registry: reg,
		Status:   status,
		OrgName:  name,
		NetName:  fmt.Sprintf("NET-%d", rng.Intn(10000)),
		Country:  []string{"US", "DE", "JP", "BR", "ZA"}[rng.Intn(5)],
		Updated:  time.Date(2020+rng.Intn(5), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC),
	}
}

// Property: for every registry flavour, randomized records survive the
// write/parse round trip with prefix, status, name and date intact.
func TestRandomizedRoundTripAllFlavours(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	regs := []alloc.Registry{alloc.ARIN, alloc.RIPE, alloc.APNIC, alloc.AFRINIC,
		alloc.LACNIC, alloc.KRNIC, alloc.TWNIC, alloc.NICBR}
	for _, reg := range regs {
		for trial := 0; trial < 30; trial++ {
			db := NewDatabase()
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				rec := randomRecord(rng, reg)
				if reg == alloc.RIPE {
					rec.OrgID = fmt.Sprintf("ORG-R%d-RIPE", i)
					db.Orgs[rec.OrgID] = Org{ID: rec.OrgID, Name: rec.OrgName, Country: rec.Country}
					rec.OrgName = "" // resolved through the org object
				}
				db.Records = append(db.Records, rec)
			}
			var sb strings.Builder
			var err error
			switch alloc.Parent(reg) {
			case alloc.ARIN:
				err = WriteARIN(&sb, db)
			case alloc.LACNIC:
				err = WriteLACNIC(&sb, db)
			default:
				err = WriteRPSL(&sb, db, reg)
			}
			if err != nil {
				t.Fatalf("%s write: %v", reg, err)
			}
			var back *Database
			switch alloc.Parent(reg) {
			case alloc.ARIN:
				back, err = ParseARIN(strings.NewReader(sb.String()))
			case alloc.LACNIC:
				back, err = ParseLACNIC(strings.NewReader(sb.String()), reg)
			default:
				back, err = ParseRPSL(strings.NewReader(sb.String()), reg)
			}
			if err != nil {
				t.Fatalf("%s parse: %v\n%s", reg, err, sb.String())
			}
			back.ResolveOrgs()
			db.ResolveOrgs()
			if len(back.Records) != len(db.Records) {
				t.Fatalf("%s: %d records, want %d", reg, len(back.Records), len(db.Records))
			}
			for i := range db.Records {
				want, got := db.Records[i], back.Records[i]
				if got.Prefixes[0] != want.Prefixes[0] {
					t.Fatalf("%s record %d: prefix %v != %v", reg, i, got.Prefixes[0], want.Prefixes[0])
				}
				if got.Status != want.Status {
					t.Fatalf("%s record %d: status %q != %q", reg, i, got.Status, want.Status)
				}
				if got.OrgName != want.OrgName {
					t.Fatalf("%s record %d: org %q != %q", reg, i, got.OrgName, want.OrgName)
				}
				if !got.Updated.Equal(want.Updated) {
					t.Fatalf("%s record %d: updated %v != %v", reg, i, got.Updated, want.Updated)
				}
			}
		}
	}
}

// Property: Flatten is idempotent and stable under record duplication.
func TestFlattenIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		rec := randomRecord(rng, alloc.ARIN)
		db.Records = append(db.Records, rec)
		if rng.Intn(3) == 0 {
			db.Records = append(db.Records, rec) // exact duplicate
		}
	}
	a := db.Flatten()
	b := db.Flatten()
	if len(a) != len(b) {
		t.Fatalf("flatten unstable: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flatten order unstable at %d", i)
		}
	}
}
