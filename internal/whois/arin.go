package whois

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strings"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// ParseARIN parses ARIN's NetRange-flavoured bulk data. Each paragraph is
// one network registration:
//
//	NetRange:  206.238.0.0 - 206.238.255.255
//	CIDR:      206.238.0.0/16
//	NetName:   PSINET-B3
//	NetType:   Direct Allocation
//	OrgName:   PSINet, Inc.
//	OrgId:     PSI
//	Updated:   2024-05-01
//
// IPv6 registrations use NetRange in "first - last" form as well; the CIDR
// line, when present and consistent, is preferred since it is already
// canonical.
func ParseARIN(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	fields := map[string]string{}
	lineNo := 0
	flush := func() error {
		if len(fields) == 0 {
			return nil
		}
		defer func() { fields = map[string]string{} }()
		spec := fields["CIDR"]
		if spec == "" {
			spec = fields["NetRange"]
		}
		if spec == "" {
			return fmt.Errorf("whois: arin block before line %d has no NetRange/CIDR", lineNo)
		}
		ps, err := parseARINSpec(spec)
		if err != nil {
			return err
		}
		rec := Record{
			Prefixes: ps,
			Registry: alloc.ARIN,
			Status:   fields["NetType"],
			OrgName:  fields["OrgName"],
			OrgID:    fields["OrgId"],
			NetName:  fields["NetName"],
			Country:  fields["Country"],
		}
		if u := fields["Updated"]; u != "" {
			if t, err := parseTime(u); err == nil {
				rec.Updated = t
			}
		}
		db.Records = append(db.Records, rec)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "#"):
			// comment
		default:
			name, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("whois: arin line %d: malformed %q", lineNo, line)
			}
			fields[strings.TrimSpace(name)] = strings.TrimSpace(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: arin scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// parseARINSpec handles ARIN's CIDR field, which may list several
// comma-separated CIDRs, or a NetRange.
func parseARINSpec(spec string) ([]netip.Prefix, error) {
	if strings.Contains(spec, ",") {
		var out []netip.Prefix
		for _, part := range strings.Split(spec, ",") {
			ps, err := parseBlockSpec(part)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
		return out, nil
	}
	return parseBlockSpec(spec)
}

// WriteARIN serializes db in ARIN's NetRange flavour; ParseARIN
// round-trips the output.
func WriteARIN(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ARIN bulk whois snapshot (synthetic)")
	fmt.Fprintln(bw)
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			fmt.Fprintf(bw, "NetRange: %s - %s\n", p.Addr(), netx.LastAddr(p))
			fmt.Fprintf(bw, "CIDR: %s\n", p)
			if rec.NetName != "" {
				fmt.Fprintf(bw, "NetName: %s\n", rec.NetName)
			}
			if rec.Status != "" {
				fmt.Fprintf(bw, "NetType: %s\n", rec.Status)
			}
			if rec.OrgName != "" {
				fmt.Fprintf(bw, "OrgName: %s\n", rec.OrgName)
			}
			if rec.OrgID != "" {
				fmt.Fprintf(bw, "OrgId: %s\n", rec.OrgID)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "Country: %s\n", rec.Country)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "Updated: %s\n", rec.Updated.UTC().Format("2006-01-02"))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
