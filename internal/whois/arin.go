package whois

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"strings"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// ParseARIN parses ARIN's NetRange-flavoured bulk data. Each paragraph is
// one network registration:
//
//	NetRange:  206.238.0.0 - 206.238.255.255
//	CIDR:      206.238.0.0/16
//	NetName:   PSINET-B3
//	NetType:   Direct Allocation
//	OrgName:   PSINet, Inc.
//	OrgId:     PSI
//	Updated:   2024-05-01
//
// IPv6 registrations use NetRange in "first - last" form as well; the CIDR
// line, when present and consistent, is preferred since it is already
// canonical.
func ParseARIN(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	// One block's kept fields. Values are materialized (copied off the
	// scanner's reused buffer) only for the names the Record needs;
	// every other attribute line costs no allocation.
	var blk struct {
		cidr, netRange, netType, orgName, orgID, netName, country, updated string
		seen                                                               bool
	}
	lineNo := 0
	flush := func() error {
		if !blk.seen {
			return nil
		}
		spec := blk.cidr
		if spec == "" {
			spec = blk.netRange
		}
		if spec == "" {
			return fmt.Errorf("whois: arin block before line %d has no NetRange/CIDR", lineNo)
		}
		ps, err := parseARINSpec(spec)
		if err != nil {
			return err
		}
		rec := Record{
			Prefixes: ps,
			Registry: alloc.ARIN,
			Status:   blk.netType,
			OrgName:  blk.orgName,
			OrgID:    blk.orgID,
			NetName:  blk.netName,
			Country:  blk.country,
		}
		if blk.updated != "" {
			if t, err := parseTime(blk.updated); err == nil {
				rec.Updated = t
			}
		}
		db.Records = append(db.Records, rec)
		blk.cidr, blk.netRange, blk.netType, blk.orgName = "", "", "", ""
		blk.orgID, blk.netName, blk.country, blk.updated = "", "", "", ""
		blk.seen = false
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			if err := flush(); err != nil {
				return nil, err
			}
		case line[0] == '#':
			// comment
		default:
			colon := bytes.IndexByte(line, ':')
			if colon < 0 {
				return nil, fmt.Errorf("whois: arin line %d: malformed %q", lineNo, line)
			}
			name := bytes.TrimSpace(line[:colon])
			value := bytes.TrimSpace(line[colon+1:])
			blk.seen = true
			// The string(name) conversions compare in place; only the
			// matched field's value is copied to the heap.
			switch string(name) {
			case "CIDR":
				blk.cidr = string(value)
			case "NetRange":
				blk.netRange = string(value)
			case "NetType":
				blk.netType = string(value)
			case "OrgName":
				blk.orgName = string(value)
			case "OrgId":
				blk.orgID = string(value)
			case "NetName":
				blk.netName = string(value)
			case "Country":
				blk.country = string(value)
			case "Updated":
				blk.updated = string(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: arin scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// parseARINSpec handles ARIN's CIDR field, which may list several
// comma-separated CIDRs, or a NetRange.
func parseARINSpec(spec string) ([]netip.Prefix, error) {
	if strings.Contains(spec, ",") {
		var out []netip.Prefix
		for _, part := range strings.Split(spec, ",") {
			ps, err := parseBlockSpec(part)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
		return out, nil
	}
	return parseBlockSpec(spec)
}

// WriteARIN serializes db in ARIN's NetRange flavour; ParseARIN
// round-trips the output.
func WriteARIN(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ARIN bulk whois snapshot (synthetic)")
	fmt.Fprintln(bw)
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			fmt.Fprintf(bw, "NetRange: %s - %s\n", p.Addr(), netx.LastAddr(p))
			fmt.Fprintf(bw, "CIDR: %s\n", p)
			if rec.NetName != "" {
				fmt.Fprintf(bw, "NetName: %s\n", rec.NetName)
			}
			if rec.Status != "" {
				fmt.Fprintf(bw, "NetType: %s\n", rec.Status)
			}
			if rec.OrgName != "" {
				fmt.Fprintf(bw, "OrgName: %s\n", rec.OrgName)
			}
			if rec.OrgID != "" {
				fmt.Fprintf(bw, "OrgId: %s\n", rec.OrgID)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "Country: %s\n", rec.Country)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "Updated: %s\n", rec.Updated.UTC().Format("2006-01-02"))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
