package whois

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

// ParseLACNIC parses the LACNIC bulk flavour, also used by the NIRs NIC.br
// and NIC.mx. Records are compact paragraphs with CIDR-notation blocks:
//
//	inetnum: 200.160.0.0/20
//	status:  allocated
//	owner:   Nucleo de Inf. e Coord. do Ponto BR
//	ownerid: BR-NUIC-LACNIC
//	country: BR
//	changed: 20240501
//
// reg selects which registry the records are attributed to (LACNIC, NIC.br
// or NIC.mx); the allocation-type vocabulary is LACNIC's either way.
func ParseLACNIC(r io.Reader, reg alloc.Registry) (*Database, error) {
	if alloc.Parent(reg) != alloc.LACNIC {
		return nil, fmt.Errorf("whois: ParseLACNIC: registry %s is not in the LACNIC zone", reg)
	}
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	fields := map[string]string{}
	lineNo := 0
	flush := func() error {
		if len(fields) == 0 {
			return nil
		}
		defer func() { fields = map[string]string{} }()
		spec := fields["inetnum"]
		if spec == "" {
			spec = fields["inet6num"]
		}
		if spec == "" {
			return fmt.Errorf("whois: lacnic block before line %d has no inetnum", lineNo)
		}
		ps, err := parseBlockSpec(spec)
		if err != nil {
			return err
		}
		rec := Record{
			Prefixes: ps,
			Registry: reg,
			Status:   fields["status"],
			OrgName:  fields["owner"],
			OrgID:    fields["ownerid"],
			Country:  fields["country"],
		}
		if c := fields["changed"]; c != "" {
			if t, err := parseTime(c); err == nil {
				rec.Updated = t
			}
		}
		db.Records = append(db.Records, rec)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			if err := flush(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#"):
			// comment
		default:
			name, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("whois: lacnic line %d: malformed %q", lineNo, line)
			}
			fields[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: lacnic scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// WriteLACNIC serializes db in the LACNIC flavour; ParseLACNIC round-trips
// the output.
func WriteLACNIC(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "% LACNIC-zone bulk whois snapshot (synthetic)")
	fmt.Fprintln(bw)
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			class := "inetnum"
			if !p.Addr().Is4() {
				class = "inet6num"
			}
			fmt.Fprintf(bw, "%s: %s\n", class, p)
			if rec.Status != "" {
				fmt.Fprintf(bw, "status: %s\n", rec.Status)
			}
			if rec.OrgName != "" {
				fmt.Fprintf(bw, "owner: %s\n", rec.OrgName)
			}
			if rec.OrgID != "" {
				fmt.Fprintf(bw, "ownerid: %s\n", rec.OrgID)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "country: %s\n", rec.Country)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "changed: %s\n", rec.Updated.UTC().Format("20060102"))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
