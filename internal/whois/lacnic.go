package whois

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

// ParseLACNIC parses the LACNIC bulk flavour, also used by the NIRs NIC.br
// and NIC.mx. Records are compact paragraphs with CIDR-notation blocks:
//
//	inetnum: 200.160.0.0/20
//	status:  allocated
//	owner:   Nucleo de Inf. e Coord. do Ponto BR
//	ownerid: BR-NUIC-LACNIC
//	country: BR
//	changed: 20240501
//
// reg selects which registry the records are attributed to (LACNIC, NIC.br
// or NIC.mx); the allocation-type vocabulary is LACNIC's either way.
func ParseLACNIC(r io.Reader, reg alloc.Registry) (*Database, error) {
	if alloc.Parent(reg) != alloc.LACNIC {
		return nil, fmt.Errorf("whois: ParseLACNIC: registry %s is not in the LACNIC zone", reg)
	}
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	// Kept fields only, copied off the scanner's reused buffer when a
	// name matches; unknown attribute lines allocate nothing.
	var blk struct {
		inetnum, inet6num, status, owner, ownerid, country, changed string
		seen                                                        bool
	}
	lineNo := 0
	flush := func() error {
		if !blk.seen {
			return nil
		}
		spec := blk.inetnum
		if spec == "" {
			spec = blk.inet6num
		}
		if spec == "" {
			return fmt.Errorf("whois: lacnic block before line %d has no inetnum", lineNo)
		}
		ps, err := parseBlockSpec(spec)
		if err != nil {
			return err
		}
		rec := Record{
			Prefixes: ps,
			Registry: reg,
			Status:   blk.status,
			OrgName:  blk.owner,
			OrgID:    blk.ownerid,
			Country:  blk.country,
		}
		if blk.changed != "" {
			if t, err := parseTime(blk.changed); err == nil {
				rec.Updated = t
			}
		}
		db.Records = append(db.Records, rec)
		blk.inetnum, blk.inet6num, blk.status, blk.owner = "", "", "", ""
		blk.ownerid, blk.country, blk.changed = "", "", ""
		blk.seen = false
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			if err := flush(); err != nil {
				return nil, err
			}
		case line[0] == '%' || line[0] == '#':
			// comment
		default:
			colon := bytes.IndexByte(line, ':')
			if colon < 0 {
				return nil, fmt.Errorf("whois: lacnic line %d: malformed %q", lineNo, line)
			}
			name := asciiLowerInPlace(bytes.TrimSpace(line[:colon]))
			value := bytes.TrimSpace(line[colon+1:])
			blk.seen = true
			switch string(name) {
			case "inetnum":
				blk.inetnum = string(value)
			case "inet6num":
				blk.inet6num = string(value)
			case "status":
				blk.status = string(value)
			case "owner":
				blk.owner = string(value)
			case "ownerid":
				blk.ownerid = string(value)
			case "country":
				blk.country = string(value)
			case "changed":
				blk.changed = string(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: lacnic scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}

// WriteLACNIC serializes db in the LACNIC flavour; ParseLACNIC round-trips
// the output.
func WriteLACNIC(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "% LACNIC-zone bulk whois snapshot (synthetic)")
	fmt.Fprintln(bw)
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			class := "inetnum"
			if !p.Addr().Is4() {
				class = "inet6num"
			}
			fmt.Fprintf(bw, "%s: %s\n", class, p)
			if rec.Status != "" {
				fmt.Fprintf(bw, "status: %s\n", rec.Status)
			}
			if rec.OrgName != "" {
				fmt.Fprintf(bw, "owner: %s\n", rec.OrgName)
			}
			if rec.OrgID != "" {
				fmt.Fprintf(bw, "ownerid: %s\n", rec.OrgID)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "country: %s\n", rec.Country)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "changed: %s\n", rec.Updated.UTC().Format("20060102"))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
