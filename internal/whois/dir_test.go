package whois

import (
	"context"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

func TestWriteDirLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := func(reg alloc.Registry, prefix, status, org string) *Database {
		db := NewDatabase()
		db.Records = append(db.Records, Record{
			Prefixes: []netip.Prefix{netx.MustParse(prefix)},
			Registry: reg, Status: status, OrgName: org,
			Updated: time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
		})
		return db
	}
	dbs := map[alloc.Registry]*Database{
		alloc.ARIN:    mk(alloc.ARIN, "206.238.0.0/16", "Allocation", "PSINet, Inc."),
		alloc.RIPE:    mk(alloc.RIPE, "193.0.0.0/21", "ALLOCATED PA", "Example GmbH"),
		alloc.APNIC:   mk(alloc.APNIC, "203.0.0.0/17", "ALLOCATED PORTABLE", "Acme Pty"),
		alloc.AFRINIC: mk(alloc.AFRINIC, "196.0.0.0/16", "ALLOCATED PA", "Afri Net"),
		alloc.LACNIC:  mk(alloc.LACNIC, "200.0.0.0/16", "ALLOCATED", "Latam SA"),
		alloc.KRNIC:   mk(alloc.KRNIC, "211.0.0.0/16", "ALLOCATED PORTABLE", "Hanguk Co"),
		alloc.TWNIC:   mk(alloc.TWNIC, "210.60.0.0/16", "ALLOCATED PORTABLE", "Taiwan Net"),
		alloc.JPNIC:   mk(alloc.JPNIC, "203.180.0.0/16", "", "Example KK"),
		alloc.NICBR:   mk(alloc.NICBR, "200.160.0.0/20", "ALLOCATED", "Ponto BR"),
	}
	jpnicTypes := map[netip.Prefix]string{
		netx.MustParse("203.180.0.0/16"): "ALLOCATED PORTABLE",
	}
	if err := WriteDir(dir, dbs, jpnicTypes); err != nil {
		t.Fatal(err)
	}
	merged, err := LoadDir(context.Background(), dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != 9 {
		t.Fatalf("merged records = %d, want 9", len(merged.Records))
	}
	byReg := map[alloc.Registry]Record{}
	for _, r := range merged.Records {
		byReg[r.Registry] = r
	}
	for reg, want := range dbs {
		got, ok := byReg[reg]
		if !ok {
			t.Errorf("registry %s missing after roundtrip", reg)
			continue
		}
		if got.Prefixes[0] != want.Records[0].Prefixes[0] {
			t.Errorf("%s prefix = %v, want %v", reg, got.Prefixes[0], want.Records[0].Prefixes[0])
		}
		if got.OrgName != want.Records[0].OrgName {
			t.Errorf("%s org = %q, want %q", reg, got.OrgName, want.Records[0].OrgName)
		}
	}
	// JPNIC enrichment from the types cache file.
	if byReg[alloc.JPNIC].Status != "ALLOCATED PORTABLE" {
		t.Errorf("jpnic status = %q, want enriched from cache", byReg[alloc.JPNIC].Status)
	}
	// Every record's type must resolve.
	for _, r := range merged.Records {
		if _, err := r.Type(); err != nil {
			t.Errorf("record %v: type: %v", r.Prefixes, err)
		}
	}
}

func TestLoadDirMissingFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "whois"), 0o755); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDir(context.Background(), dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Records) != 0 {
		t.Errorf("records = %d, want 0", len(db.Records))
	}
}

func TestLoadDirMalformedFileErrors(t *testing.T) {
	dir := t.TempDir()
	wdir := filepath.Join(dir, "whois")
	if err := os.MkdirAll(wdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wdir, "ripe.db"), []byte("inetnum: banana\nstatus: X\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(context.Background(), dir, LoadOptions{}); err == nil {
		t.Error("malformed ripe.db accepted")
	}
}

func TestLoadDirWithLiveJPNICClient(t *testing.T) {
	dir := t.TempDir()
	jp := NewDatabase()
	p := netx.MustParse("203.180.0.0/16")
	jp.Records = append(jp.Records, Record{
		Prefixes: []netip.Prefix{p}, Registry: alloc.JPNIC,
		NetName: "N", OrgName: "Example KK",
		Updated: time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
	})
	// Write the bulk file but no types cache: force live queries.
	if err := WriteDir(dir, map[alloc.Registry]*Database{alloc.JPNIC: jp}, nil); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.Register(p, "Example KK", "N", "ASSIGNED PORTABLE")
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	db, err := LoadDir(context.Background(), dir, LoadOptions{JPNICClient: &Client{Addr: addr, Timeout: 5 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Records[0].Status != "ASSIGNED PORTABLE" {
		t.Errorf("live enrichment status = %q", db.Records[0].Status)
	}
}

// TestLoadDirParallelMatchesSerial pins the LoadOptions.Workers contract:
// per-registry files may parse concurrently, but the single-threaded
// in-order merge makes the resulting database identical to a serial load.
func TestLoadDirParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	mk := func(reg alloc.Registry, prefix, status, org string) *Database {
		db := NewDatabase()
		db.Records = append(db.Records, Record{
			Prefixes: []netip.Prefix{netx.MustParse(prefix)},
			Registry: reg, Status: status, OrgName: org,
			Updated: time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
		})
		return db
	}
	dbs := map[alloc.Registry]*Database{
		alloc.ARIN:  mk(alloc.ARIN, "206.238.0.0/16", "Allocation", "PSINet, Inc."),
		alloc.RIPE:  mk(alloc.RIPE, "193.0.0.0/21", "ALLOCATED PA", "Example GmbH"),
		alloc.APNIC: mk(alloc.APNIC, "203.0.0.0/17", "ALLOCATED PORTABLE", "Acme Pty"),
		alloc.NICBR: mk(alloc.NICBR, "200.160.0.0/20", "ALLOCATED", "Ponto BR"),
	}
	if err := WriteDir(dir, dbs, nil); err != nil {
		t.Fatal(err)
	}
	serial, err := LoadDir(context.Background(), dir, LoadOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -1, 4} {
		par, err := LoadDir(context.Background(), dir, LoadOptions{Workers: workers})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Records, par.Records) {
			t.Errorf("Workers=%d: records differ from serial load", workers)
		}
		if !reflect.DeepEqual(serial.Orgs, par.Orgs) {
			t.Errorf("Workers=%d: orgs differ from serial load", workers)
		}
	}
}

// TestLoadDirCancelled verifies the parse fan-out honors context
// cancellation.
func TestLoadDirCancelled(t *testing.T) {
	dir := t.TempDir()
	dbs := map[alloc.Registry]*Database{}
	db := NewDatabase()
	db.Records = append(db.Records, Record{
		Prefixes: []netip.Prefix{netx.MustParse("206.238.0.0/16")},
		Registry: alloc.ARIN, Status: "Allocation", OrgName: "PSINet, Inc.",
		Updated: time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC),
	})
	dbs[alloc.ARIN] = db
	if err := WriteDir(dir, dbs, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LoadDir(ctx, dir, LoadOptions{Workers: 4}); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
