package whois

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

func benchRPSL(n int) string {
	rng := rand.New(rand.NewSource(3))
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.APNIC))
	}
	var sb strings.Builder
	if err := WriteRPSL(&sb, db, alloc.APNIC); err != nil {
		panic(err)
	}
	return sb.String()
}

func BenchmarkParseRPSL(b *testing.B) {
	data := benchRPSL(2000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRPSL(strings.NewReader(data), alloc.APNIC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseARIN(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db := NewDatabase()
	for i := 0; i < 2000; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.ARIN))
	}
	var sb strings.Builder
	if err := WriteARIN(&sb, db); err != nil {
		b.Fatal(err)
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseARIN(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLACNIC(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	db := NewDatabase()
	for i := 0; i < 2000; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.LACNIC))
	}
	var sb strings.Builder
	if err := WriteLACNIC(&sb, db); err != nil {
		b.Fatal(err)
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLACNIC(strings.NewReader(data), alloc.LACNIC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	db := NewDatabase()
	for i := 0; i < 5000; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.ARIN))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Flatten()
	}
}
