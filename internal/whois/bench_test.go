package whois

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/prefix2org/prefix2org/internal/alloc"
)

func benchRPSL(n int) string {
	rng := rand.New(rand.NewSource(3))
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.APNIC))
	}
	var sb strings.Builder
	if err := WriteRPSL(&sb, db, alloc.APNIC); err != nil {
		panic(err)
	}
	return sb.String()
}

func BenchmarkParseRPSL(b *testing.B) {
	data := benchRPSL(2000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRPSL(strings.NewReader(data), alloc.APNIC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	db := NewDatabase()
	for i := 0; i < 5000; i++ {
		db.Records = append(db.Records, randomRecord(rng, alloc.ARIN))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Flatten()
	}
}
