package whois

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// rpslObject is one paragraph of "attribute: value" lines. Repeated
// attributes accumulate in order.
type rpslObject struct {
	class string // first attribute name, identifies the object type
	attrs []rpslAttr
}

type rpslAttr struct{ name, value string }

func (o *rpslObject) first(name string) (string, bool) {
	for _, a := range o.attrs {
		if a.name == name {
			return a.value, true
		}
	}
	return "", false
}

func (o *rpslObject) all(name string) []string {
	var out []string
	for _, a := range o.attrs {
		if a.name == name {
			out = append(out, a.value)
		}
	}
	return out
}

// scanRPSL reads paragraph-separated RPSL objects. Lines beginning with
// '%' or '#' are comments; a line starting with whitespace or '+' continues
// the previous attribute value.
func scanRPSL(r io.Reader, fn func(*rpslObject) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var cur *rpslObject
	flush := func() error {
		if cur == nil || len(cur.attrs) == 0 {
			cur = nil
			return nil
		}
		obj := cur
		cur = nil
		return fn(obj)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#"):
			// comment
		case line[0] == ' ' || line[0] == '\t' || line[0] == '+':
			if cur == nil || len(cur.attrs) == 0 {
				return fmt.Errorf("whois: rpsl line %d: continuation with no attribute", lineNo)
			}
			last := &cur.attrs[len(cur.attrs)-1]
			last.value = strings.TrimSpace(last.value + " " + strings.TrimSpace(strings.TrimPrefix(line, "+")))
		default:
			name, value, ok := strings.Cut(line, ":")
			if !ok {
				return fmt.Errorf("whois: rpsl line %d: malformed attribute %q", lineNo, line)
			}
			if cur == nil {
				cur = &rpslObject{class: strings.ToLower(strings.TrimSpace(name))}
			}
			cur.attrs = append(cur.attrs, rpslAttr{
				name:  strings.ToLower(strings.TrimSpace(name)),
				value: strings.TrimSpace(value),
			})
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("whois: rpsl scan: %w", err)
	}
	return flush()
}

// ParseRPSL parses an RPSL-flavoured bulk database (RIPE, APNIC, AFRINIC,
// KRNIC, TWNIC) into a Database. inetnum and inet6num objects become
// Records; organisation objects populate the Orgs index. For RIPE the
// organization name is resolved later via the org: reference; for the
// other registries it is taken from the first descr line.
func ParseRPSL(r io.Reader, reg alloc.Registry) (*Database, error) {
	db := NewDatabase()
	useOrgRef := reg == alloc.RIPE
	err := scanRPSL(r, func(o *rpslObject) error {
		switch o.class {
		case "inetnum", "inet6num":
			spec, _ := o.first(o.class)
			prefixes, err := parseBlockSpec(spec)
			if err != nil {
				return fmt.Errorf("%s %q: %w", o.class, spec, err)
			}
			rec := Record{Prefixes: prefixes, Registry: reg}
			rec.Status, _ = o.first("status")
			rec.NetName, _ = o.first("netname")
			rec.Country, _ = o.first("country")
			if useOrgRef {
				rec.OrgID, _ = o.first("org")
				// Legacy RIPE objects may carry the holder only in descr.
				if rec.OrgID == "" {
					if d := o.all("descr"); len(d) > 0 {
						rec.OrgName = d[0]
					}
				}
			} else if d := o.all("descr"); len(d) > 0 {
				rec.OrgName = d[0]
			}
			if lm, ok := o.first("last-modified"); ok {
				if t, err := parseTime(lm); err == nil {
					rec.Updated = t
				}
			} else if ch := o.all("changed"); len(ch) > 0 {
				if t, err := parseTime(ch[len(ch)-1]); err == nil {
					rec.Updated = t
				}
			}
			db.Records = append(db.Records, rec)
		case "organisation":
			id, _ := o.first("organisation")
			name, _ := o.first("org-name")
			country, _ := o.first("country")
			if id != "" {
				db.Orgs[id] = Org{ID: id, Name: name, Country: country}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// WriteRPSL serializes db into the RPSL flavour used by reg, producing
// text that ParseRPSL round-trips. The synthetic-world generator uses it
// to materialize registry dumps on disk.
func WriteRPSL(w io.Writer, db *Database, reg alloc.Registry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% %s bulk whois snapshot (synthetic)\n\n", reg)
	useOrgRef := reg == alloc.RIPE
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			class, spec := "inetnum", ""
			if p.Addr().Is4() {
				spec = fmt.Sprintf("%s - %s", p.Addr(), netx.LastAddr(p))
			} else {
				class, spec = "inet6num", p.String()
			}
			fmt.Fprintf(bw, "%s: %s\n", class, spec)
			if rec.NetName != "" {
				fmt.Fprintf(bw, "netname: %s\n", rec.NetName)
			}
			if useOrgRef && rec.OrgID != "" {
				fmt.Fprintf(bw, "org: %s\n", rec.OrgID)
			} else if rec.OrgName != "" {
				fmt.Fprintf(bw, "descr: %s\n", rec.OrgName)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "country: %s\n", rec.Country)
			}
			if rec.Status != "" {
				fmt.Fprintf(bw, "status: %s\n", rec.Status)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "last-modified: %s\n", rec.Updated.UTC().Format("2006-01-02T15:04:05Z"))
			}
			fmt.Fprintln(bw)
		}
	}
	ids := make([]string, 0, len(db.Orgs))
	for id := range db.Orgs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := db.Orgs[id]
		fmt.Fprintf(bw, "organisation: %s\norg-name: %s\n", o.ID, o.Name)
		if o.Country != "" {
			fmt.Fprintf(bw, "country: %s\n", o.Country)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
