package whois

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"github.com/prefix2org/prefix2org/internal/alloc"
	"github.com/prefix2org/prefix2org/internal/intern"
	"github.com/prefix2org/prefix2org/internal/netx"
)

// rpslObject is one paragraph of "attribute: value" lines. Repeated
// attributes accumulate in order. The scanner reuses one object (and
// its value arena) across paragraphs, so a bulk parse allocates per
// kept field, not per line; callers materialize the few values they
// need via first/all and must not retain the object past the callback.
type rpslObject struct {
	class string // first attribute name, identifies the object type
	attrs []rpslAttr
	arena []byte // concatenated attribute values, addressed by rpslAttr
}

// rpslAttr is one attribute: an interned lowercase name and the value's
// bounds in the object's arena.
type rpslAttr struct {
	name       string
	start, end int32
}

func (o *rpslObject) reset() {
	o.class = ""
	o.attrs = o.attrs[:0]
	o.arena = o.arena[:0]
}

func (o *rpslObject) first(name string) (string, bool) {
	for _, a := range o.attrs {
		if a.name == name {
			return string(o.arena[a.start:a.end]), true
		}
	}
	return "", false
}

func (o *rpslObject) all(name string) []string {
	var out []string
	for _, a := range o.attrs {
		if a.name == name {
			out = append(out, string(o.arena[a.start:a.end]))
		}
	}
	return out
}

// asciiLowerInPlace lowercases ASCII letters in b, scribbling on the
// scanner's buffer (which the parser owns until the next Scan call).
func asciiLowerInPlace(b []byte) []byte {
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return b
}

// scanRPSL reads paragraph-separated RPSL objects. Lines beginning with
// '%' or '#' are comments; a line starting with whitespace or '+' continues
// the previous attribute value. The object passed to fn is reused: fn
// must copy out anything it keeps.
func scanRPSL(r io.Reader, fn func(*rpslObject) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	names := intern.New(32)
	cur := &rpslObject{}
	flush := func() error {
		if len(cur.attrs) == 0 {
			return nil
		}
		err := fn(cur)
		cur.reset()
		return err
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		trimmed := bytes.TrimSpace(line)
		switch {
		case len(trimmed) == 0:
			if err := flush(); err != nil {
				return err
			}
		case line[0] == '%' || line[0] == '#':
			// comment
		case line[0] == ' ' || line[0] == '\t' || line[0] == '+':
			if len(cur.attrs) == 0 {
				return fmt.Errorf("whois: rpsl line %d: continuation with no attribute", lineNo)
			}
			cont := bytes.TrimSpace(bytes.TrimPrefix(trimmed, []byte("+")))
			// The last attribute's value is always the arena tail, so a
			// continuation extends it in place.
			last := &cur.attrs[len(cur.attrs)-1]
			if last.end > last.start && len(cont) > 0 {
				cur.arena = append(cur.arena, ' ')
			}
			cur.arena = append(cur.arena, cont...)
			last.end = int32(len(cur.arena))
		default:
			colon := bytes.IndexByte(line, ':')
			if colon < 0 {
				return fmt.Errorf("whois: rpsl line %d: malformed attribute %q", lineNo, line)
			}
			name := names.Bytes(asciiLowerInPlace(bytes.TrimSpace(line[:colon])))
			value := bytes.TrimSpace(line[colon+1:])
			if len(cur.attrs) == 0 {
				cur.class = name
			}
			start := int32(len(cur.arena))
			cur.arena = append(cur.arena, value...)
			cur.attrs = append(cur.attrs, rpslAttr{name: name, start: start, end: int32(len(cur.arena))})
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("whois: rpsl scan: %w", err)
	}
	return flush()
}

// ParseRPSL parses an RPSL-flavoured bulk database (RIPE, APNIC, AFRINIC,
// KRNIC, TWNIC) into a Database. inetnum and inet6num objects become
// Records; organisation objects populate the Orgs index. For RIPE the
// organization name is resolved later via the org: reference; for the
// other registries it is taken from the first descr line.
func ParseRPSL(r io.Reader, reg alloc.Registry) (*Database, error) {
	db := NewDatabase()
	useOrgRef := reg == alloc.RIPE
	err := scanRPSL(r, func(o *rpslObject) error {
		switch o.class {
		case "inetnum", "inet6num":
			spec, _ := o.first(o.class)
			prefixes, err := parseBlockSpec(spec)
			if err != nil {
				return fmt.Errorf("%s %q: %w", o.class, spec, err)
			}
			rec := Record{Prefixes: prefixes, Registry: reg}
			rec.Status, _ = o.first("status")
			rec.NetName, _ = o.first("netname")
			rec.Country, _ = o.first("country")
			if useOrgRef {
				rec.OrgID, _ = o.first("org")
				// Legacy RIPE objects may carry the holder only in descr.
				if rec.OrgID == "" {
					if d := o.all("descr"); len(d) > 0 {
						rec.OrgName = d[0]
					}
				}
			} else if d := o.all("descr"); len(d) > 0 {
				rec.OrgName = d[0]
			}
			if lm, ok := o.first("last-modified"); ok {
				if t, err := parseTime(lm); err == nil {
					rec.Updated = t
				}
			} else if ch := o.all("changed"); len(ch) > 0 {
				if t, err := parseTime(ch[len(ch)-1]); err == nil {
					rec.Updated = t
				}
			}
			db.Records = append(db.Records, rec)
		case "organisation":
			id, _ := o.first("organisation")
			name, _ := o.first("org-name")
			country, _ := o.first("country")
			if id != "" {
				db.Orgs[id] = Org{ID: id, Name: name, Country: country}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// WriteRPSL serializes db into the RPSL flavour used by reg, producing
// text that ParseRPSL round-trips. The synthetic-world generator uses it
// to materialize registry dumps on disk.
func WriteRPSL(w io.Writer, db *Database, reg alloc.Registry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% %s bulk whois snapshot (synthetic)\n\n", reg)
	useOrgRef := reg == alloc.RIPE
	for _, rec := range db.Records {
		for _, p := range rec.Prefixes {
			class, spec := "inetnum", ""
			if p.Addr().Is4() {
				spec = fmt.Sprintf("%s - %s", p.Addr(), netx.LastAddr(p))
			} else {
				class, spec = "inet6num", p.String()
			}
			fmt.Fprintf(bw, "%s: %s\n", class, spec)
			if rec.NetName != "" {
				fmt.Fprintf(bw, "netname: %s\n", rec.NetName)
			}
			if useOrgRef && rec.OrgID != "" {
				fmt.Fprintf(bw, "org: %s\n", rec.OrgID)
			} else if rec.OrgName != "" {
				fmt.Fprintf(bw, "descr: %s\n", rec.OrgName)
			}
			if rec.Country != "" {
				fmt.Fprintf(bw, "country: %s\n", rec.Country)
			}
			if rec.Status != "" {
				fmt.Fprintf(bw, "status: %s\n", rec.Status)
			}
			if !rec.Updated.IsZero() {
				fmt.Fprintf(bw, "last-modified: %s\n", rec.Updated.UTC().Format("2006-01-02T15:04:05Z"))
			}
			fmt.Fprintln(bw)
		}
	}
	ids := make([]string, 0, len(db.Orgs))
	for id := range db.Orgs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := db.Orgs[id]
		fmt.Fprintf(bw, "organisation: %s\norg-name: %s\n", o.ID, o.Name)
		if o.Country != "" {
			fmt.Fprintf(bw, "country: %s\n", o.Country)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
