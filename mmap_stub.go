//go:build !unix

package prefix2org

// mmapFile on platforms without mmap: OpenSnapshotFile sees
// errMmapUnsupported and degrades to a full read.
func mmapFile(string) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
