// Command benchjson parses `go test -bench` output into JSON and
// compares runs, with nothing beyond the standard library.
//
// Save mode (the `make bench-save` target):
//
//	go test -bench=. -benchmem -run='^$' . | go run ./scripts/benchjson -out BENCH_2026-08-06.json
//
// Compare mode (the `make bench-compare` / `make ci` guard):
//
//	go test -bench=. -benchmem -run='^$' . | go run ./scripts/benchjson -against BENCH_2026-08-06.json
//
// Compare fails (exit 1) when a benchmark present in both runs got
// slower by more than -threshold (default 2.5x). The threshold is
// deliberately generous: benchmarks run on shared CI machines, and the
// guard is meant to catch order-of-magnitude regressions — an
// accidental O(n^2), a lost fast path — not noise. Allocation counts
// are compared exactly (they are deterministic): any benchmark that
// reported 0 allocs/op in the saved run must still report 0.
//
// Benchmarks whose name matches -strict-match are held to the tighter
// -strict-threshold (default 1.2x) instead: the hot lookup path is
// stable enough on one machine that a >20% slowdown is signal.
//
// -ratio asserts a relationship WITHIN the current run, immune to
// machine speed: 'NUM:DEN<=F' fails when ns/op(NUM) / ns/op(DEN)
// exceeds F. It guards invariants like "the delta rebuild is at least
// 5x faster than the full rebuild". -ratio may run standalone (neither
// -out nor -against) or combined with either mode. When the input
// holds several lines per benchmark (a `go test -count=N` run), each
// side reduces via min — the robust per-op estimate under machine
// noise, since interference only ever adds time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the saved run: environment lines plus results.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write parsed results as JSON to this file")
	against := flag.String("against", "", "compare parsed results against this saved JSON file")
	threshold := flag.Float64("threshold", 2.5, "max allowed ns/op slowdown factor in compare mode")
	strictMatch := flag.String("strict-match", "", "regexp of benchmark names held to -strict-threshold instead")
	strictThreshold := flag.Float64("strict-threshold", 1.2, "max allowed slowdown factor for -strict-match benchmarks")
	ratio := flag.String("ratio", "", "assert 'NUM:DEN<=F' on the current run's ns/op (e.g. 'BenchmarkDeltaRebuild/delta:BenchmarkDeltaRebuild/full<=0.2')")
	flag.Parse()
	var strictRe *regexp.Regexp
	if *strictMatch != "" {
		var err error
		if strictRe, err = regexp.Compile(*strictMatch); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -strict-match:", err)
			os.Exit(2)
		}
	}
	if *out != "" && *against != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out and -against are mutually exclusive")
		os.Exit(2)
	}
	if *out == "" && *against == "" && *ratio == "" {
		fmt.Fprintln(os.Stderr, "benchjson: one of -out, -against, or -ratio is required")
		os.Exit(2)
	}
	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(cur.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	if *ratio != "" {
		ok, err := checkRatio(os.Stdout, cur, *ratio)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		if *out == "" && *against == "" {
			return
		}
	}
	if *out != "" {
		if err := save(*out, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		fmt.Printf("benchjson: wrote %d results to %s\n", len(cur.Results), *out)
		return
	}
	base, err := load(*against)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if !compare(os.Stdout, base, cur, *threshold, strictRe, *strictThreshold) {
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkName-8   123  456.7 ns/op  89 B/op  1 allocs/op  3.2 extra_metric
func parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			f.Results = append(f.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	// Strip the -GOMAXPROCS suffix so runs at different core counts
	// still match up.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q", line)
	}
	res := Result{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		case "MB/s":
			// throughput is derived from ns/op; skip
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	if res.NsPerOp == 0 && res.Iterations > 0 {
		return Result{}, fmt.Errorf("no ns/op in %q", line)
	}
	return res, nil
}

// checkRatio enforces a 'NUM:DEN<=F' spec against the current run. Both
// benchmarks must be present; a missing side is an error (exit 2), not
// a pass, so a renamed benchmark cannot silently disable the guard.
// Several lines per name (a -count=N run) reduce via min ns/op.
func checkRatio(w io.Writer, cur *File, spec string) (bool, error) {
	names, limStr, ok := strings.Cut(spec, "<=")
	if !ok {
		return false, fmt.Errorf("bad -ratio %q: want 'NUM:DEN<=F'", spec)
	}
	num, den, ok := strings.Cut(names, ":")
	if !ok {
		return false, fmt.Errorf("bad -ratio %q: want 'NUM:DEN<=F'", spec)
	}
	num, den = strings.TrimSpace(num), strings.TrimSpace(den)
	limit, err := strconv.ParseFloat(strings.TrimSpace(limStr), 64)
	if err != nil || limit <= 0 {
		return false, fmt.Errorf("bad -ratio limit %q", limStr)
	}
	minNs := func(name string) (float64, bool) {
		best, found := 0.0, false
		for _, r := range cur.Results {
			if r.Name == name && r.NsPerOp > 0 && (!found || r.NsPerOp < best) {
				best, found = r.NsPerOp, true
			}
		}
		return best, found
	}
	nv, found := minNs(num)
	if !found {
		return false, fmt.Errorf("-ratio: benchmark %q not in this run", num)
	}
	dv, found := minNs(den)
	if !found {
		return false, fmt.Errorf("-ratio: benchmark %q not in this run", den)
	}
	got := nv / dv
	verdict := "ok"
	pass := got <= limit
	if !pass {
		verdict = "RATIO-VIOLATION"
	}
	fmt.Fprintf(w, "  %-8s %s / %s = %.3f (limit %.3f)\n", verdict, num, den, got, limit)
	return pass, nil
}

func save(path string, f *File) error {
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func compare(w io.Writer, base, cur *File, threshold float64, strictRe *regexp.Regexp, strictThreshold float64) bool {
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	names := make([]string, 0, len(cur.Results))
	for _, r := range cur.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	curBy := map[string]Result{}
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	ok, compared := true, 0
	for _, name := range names {
		c := curBy[name]
		b, found := baseBy[name]
		if !found || b.NsPerOp == 0 {
			fmt.Fprintf(w, "  new      %-50s %12.1f ns/op\n", name, c.NsPerOp)
			continue
		}
		compared++
		factor := c.NsPerOp / b.NsPerOp
		limit := threshold
		if strictRe != nil && strictRe.MatchString(name) {
			limit = strictThreshold
		}
		verdict := "ok"
		if factor > limit {
			verdict = "REGRESSION"
			ok = false
		}
		if b.AllocsPerOp != nil && *b.AllocsPerOp == 0 &&
			(c.AllocsPerOp == nil || *c.AllocsPerOp != 0) {
			verdict = "ALLOC-REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "  %-8s %-50s %12.1f ns/op  (%.2fx of saved %.1f)\n", verdict, name, c.NsPerOp, factor, b.NsPerOp)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchjson: no overlapping benchmarks to compare")
		return false
	}
	if !ok {
		fmt.Fprintf(w, "benchjson: regression beyond the allowed threshold\n")
	}
	return ok
}
