# Renders `go test -bench BenchmarkPipelineBuild` output as a
# per-stage x worker-count wall-time table. The benchmark reports each
# pipeline stage's duration as a "<stage>_s" metric on sub-benchmarks
# named workers=N; this script pivots those metrics into columns, adds
# a total row from ns/op, and passes every other line through.
#
# Usage: go test -bench='^BenchmarkPipelineBuild$' -run='^$' . | awk -f scripts/benchtable.awk

/^BenchmarkPipelineBuild\/workers=/ {
	w = $1
	sub(/^.*workers=/, "", w)
	sub(/-[0-9]+$/, "", w)
	if (!(w in seenw)) { seenw[w] = 1; wcols[++nw] = w }
	for (i = 3; i < NF; i += 2) {
		unit = $(i + 1)
		if (unit == "ns/op") {
			total[w] = sprintf("%.3fs", $i / 1e9)
		} else if (unit ~ /_s$/) {
			stage = unit
			sub(/_s$/, "", stage)
			# Stage rows keep first-encounter order, which is the
			# pipeline's own stage order.
			if (!(stage in seens)) { seens[stage] = 1; srows[++ns] = stage }
			cell[stage, w] = sprintf("%.3fs", $i)
		}
	}
	next
}
{ print }
END {
	if (nw == 0) {
		print "benchtable: no BenchmarkPipelineBuild/workers=N lines found" > "/dev/stderr"
		exit 1
	}
	printf "\n%-24s", "stage"
	for (j = 1; j <= nw; j++) printf " %12s", "workers=" wcols[j]
	printf "\n"
	for (i = 1; i <= ns; i++) {
		printf "%-24s", srows[i]
		for (j = 1; j <= nw; j++) printf " %12s", cell[srows[i], wcols[j]]
		printf "\n"
	}
	printf "%-24s", "total (ns/op)"
	for (j = 1; j <= nw; j++) printf " %12s", total[wcols[j]]
	printf "\n"
}
