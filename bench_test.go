// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its rows/series each iteration and reporting
// the headline metric), plus micro-benchmarks for the pipeline stages.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment custom metrics (recall_pct, reduction_pct, ...) are
// the values recorded in EXPERIMENTS.md next to the paper's numbers.
package prefix2org_test

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	prefix2org "github.com/prefix2org/prefix2org"
	"github.com/prefix2org/prefix2org/internal/experiments"
	"github.com/prefix2org/prefix2org/internal/radix"
	"github.com/prefix2org/prefix2org/internal/store"
	"github.com/prefix2org/prefix2org/internal/synth"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
	benchDir  string
)

// env builds one paper-scale environment shared by all benchmarks.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "p2o-bench")
		if benchErr != nil {
			return
		}
		benchEnv, benchErr = experiments.Setup(context.Background(), synth.DefaultConfig(), benchDir)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1AllocationMapping regenerates the 22-type DO/DC mapping.
func BenchmarkTable1AllocationMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTable2StringCleaning regenerates the cleaning-step counts and
// reports the name-reduction percentage (paper: ~12%).
func BenchmarkTable2StringCleaning(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Table2() == nil {
			b.Fatal("nil table")
		}
	}
	b.ReportMetric(e.Table2Reduction(), "reduction_pct")
}

// BenchmarkTable3Excerpt regenerates the aggregation excerpt.
func BenchmarkTable3Excerpt(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Table3() == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTable4DatasetMetrics regenerates the key-metric table and
// reports the multi-name space share (paper: 36.9% of IPv4 space).
func BenchmarkTable4DatasetMetrics(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Table4() == nil {
			b.Fatal("nil table")
		}
	}
	b.ReportMetric(e.DS.Stats.PctV4SpaceInMultiName, "multiname_space_pct")
	b.ReportMetric(e.DS.Stats.PctV4DistinctDC, "v4_distinct_dc_pct")
	b.ReportMetric(e.DS.Stats.PctV4InRPKI, "v4_rpki_pct")
}

// BenchmarkTable5ValidationIPv4 regenerates the IPv4 validation and
// reports overall recall (paper: 99.03%) and precision (paper: 66.55%,
// depressed by non-exhaustive lists).
func BenchmarkTable5ValidationIPv4(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var recall, precision float64
	for i := 0; i < b.N; i++ {
		_, rep, err := e.Table5()
		if err != nil {
			b.Fatal(err)
		}
		recall, precision = rep.Total.Recall(), rep.Total.Precision()
	}
	b.ReportMetric(recall, "recall_pct")
	b.ReportMetric(precision, "precision_pct")
}

// BenchmarkTable6ValidationIPv6 regenerates the IPv6 validation (paper
// recall: 99.31%).
func BenchmarkTable6ValidationIPv6(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		_, rep, err := e.Table6()
		if err != nil {
			b.Fatal(err)
		}
		recall = rep.Total.Recall()
	}
	b.ReportMetric(recall, "recall_pct")
}

// BenchmarkTable7ROADisparity regenerates the AS-centric vs
// prefix-centric ROA comparison and reports how many ASNs show a >30pp
// disparity.
func BenchmarkTable7ROADisparity(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	disparate := 0
	for i := 0; i < b.N; i++ {
		_, rows, err := e.Table7(3, 15)
		if err != nil {
			b.Fatal(err)
		}
		disparate = 0
		for _, r := range rows {
			if r.Disparity() > 30 {
				disparate++
			}
		}
	}
	b.ReportMetric(float64(disparate), "asns_over_30pp")
}

// BenchmarkTables8to12Rights regenerates the per-RIR rights matrices.
func BenchmarkTables8to12Rights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Tables8to12()) != 5 {
			b.Fatal("wrong table count")
		}
	}
}

// BenchmarkFigure4TopClustersSpace regenerates the cumulative-space
// series and reports the top-100 fractions for the three methods (paper:
// P2O 6.2pp above WHOIS-name clustering).
func BenchmarkFigure4TopClustersSpace(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var fd *experiments.FigureData
	for i := 0; i < b.N; i++ {
		fd = e.Figure4(100)
	}
	b.ReportMetric(100*fd.P2O, "p2o_top100_pct")
	b.ReportMetric(100*fd.Whois, "whois_top100_pct")
	b.ReportMetric(100*fd.AS2Org, "as2org_top100_pct")
}

// BenchmarkFigure5TopClustersNames regenerates the cumulative-names
// series (paper: >600 names in P2O's top-100 vs exactly 100 for
// WHOIS-name clusters).
func BenchmarkFigure5TopClustersNames(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var fd *experiments.FigureData
	for i := 0; i < b.N; i++ {
		fd = e.Figure5(100)
	}
	b.ReportMetric(fd.P2O, "p2o_top100_names")
	b.ReportMetric(fd.Whois, "whois_top100_names")
}

// BenchmarkCaseStudyOrgsWithoutASN regenerates §8.1 and reports the share
// of organizations without an ASN (paper: 21.41%).
func BenchmarkCaseStudyOrgsWithoutASN(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var pct float64
	for i := 0; i < b.N; i++ {
		_, rep, err := e.Case81(10)
		if err != nil {
			b.Fatal(err)
		}
		pct = rep.PctClusters()
	}
	b.ReportMetric(pct, "no_asn_org_pct")
}

// --- pipeline-stage micro-benchmarks ----------------------------------------

// benchWorkerCounts returns the serial-vs-parallel dimensions of the
// pipeline benchmark: 1 (the serial baseline), 4, and GOMAXPROCS when
// it differs from both.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkPipelineBuild measures the full pipeline over the paper-scale
// world's serialized data directory (parse + resolve + clean + cluster)
// and reports each stage's wall time from the build trace so regressions
// can be localized without a profiler. One sub-benchmark per worker
// count (serial baseline, 4, GOMAXPROCS) exposes how the load and
// resolve stages scale; `make bench` renders the comparison table.
func BenchmarkPipelineBuild(b *testing.B) {
	e := env(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var trace *prefix2org.BuildTrace
			for i := 0; i < b.N; i++ {
				ds, err := prefix2org.BuildFromDir(context.Background(), e.Dir, prefix2org.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if ds.Stats.IPv4Prefixes == 0 {
					b.Fatal("empty dataset")
				}
				trace = ds.Trace
			}
			for _, sp := range trace.Spans() {
				b.ReportMetric(sp.Duration.Seconds(), sp.Name+"_s")
			}
		})
	}
}

// BenchmarkWorldGeneration measures synthetic-world generation.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := synth.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookup measures dataset point queries.
func BenchmarkLookup(b *testing.B) {
	e := env(b)
	prefixes := make([]netip.Prefix, 0, 1024)
	for i := range e.DS.Records {
		prefixes = append(prefixes, e.DS.Records[i].Prefix)
		if len(prefixes) == cap(prefixes) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.DS.Lookup(prefixes[i%len(prefixes)]); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// benchAddrs returns up to 1024 routed addresses from the shared
// environment for LPM benchmarks.
func benchAddrs(b *testing.B) ([]netip.Addr, *experiments.Env) {
	e := env(b)
	addrs := make([]netip.Addr, 0, 1024)
	for i := range e.DS.Records {
		addrs = append(addrs, e.DS.Records[i].Prefix.Addr())
		if len(addrs) == cap(addrs) {
			break
		}
	}
	return addrs, e
}

// BenchmarkLookupAddr measures longest-prefix-match address queries —
// the whoisd hot path (one LPM per IP query) — on the frozen index.
// The acceptance bar is 0 allocs/op and at least 2x the radix
// baseline below.
func BenchmarkLookupAddr(b *testing.B) {
	addrs, e := benchAddrs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.DS.LookupAddr(addrs[i%len(addrs)]); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkLookupAddrRadix is the pointer-chasing baseline
// BenchmarkLookupAddr replaced: the same queries answered by the
// generic radix tree the build pipeline still uses internally.
func BenchmarkLookupAddrRadix(b *testing.B) {
	addrs, e := benchAddrs(b)
	tr := radix.New[int]()
	for i := range e.DS.Records {
		tr.Insert(e.DS.Records[i].Prefix, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		bits := 128
		if a.Is4() {
			bits = 32
		}
		if _, ok := tr.LongestMatch(netip.PrefixFrom(a, bits)); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkStoreSwapUnderLoad measures snapshot publication while
// GOMAXPROCS readers hammer Current()+LookupAddr — the serving-layer
// hot-swap cost. reads_per_swap reports how much reader throughput fits
// between consecutive swaps; readers never block on the swap path.
func BenchmarkStoreSwapUnderLoad(b *testing.B) {
	e := env(b)
	st := store.New(&store.Snapshot{Dataset: e.DS})
	addr := e.DS.Records[0].Prefix.Addr()
	stop := make(chan struct{})
	var reads int64
	var wg sync.WaitGroup
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					atomic.AddInt64(&reads, n)
					return
				default:
				}
				ds := st.Current().Dataset
				if _, ok := ds.LookupAddr(addr); !ok {
					panic("lookup miss")
				}
				n++
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh wrapper per swap: published snapshots are immutable.
		st.Swap(&store.Snapshot{Dataset: e.DS})
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(reads)/float64(b.N), "reads_per_swap")
}

// BenchmarkRadixCoveringChain measures the delegation-tree primitive.
func BenchmarkRadixCoveringChain(b *testing.B) {
	tr := radix.New[int]()
	base := netip.MustParsePrefix("10.0.0.0/8")
	tr.Insert(base, 0)
	p := base
	// A 16-level nested chain plus fan-out siblings.
	for bits := 9; bits <= 24; bits++ {
		p = netip.PrefixFrom(p.Addr(), bits)
		tr.Insert(p, bits)
	}
	for i := 0; i < 4096; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 4), byte(i << 4), 0})
		tr.Insert(netip.PrefixFrom(a, 24), i)
	}
	q := netip.MustParsePrefix("10.0.0.0/26")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.CoveringChain(q)) == 0 {
			b.Fatal("no chain")
		}
	}
}

// BenchmarkAblation regenerates the §6 component analysis (each
// clustering signal disabled in turn) and reports the cluster counts.
func BenchmarkAblation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var results []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		_, results, err = e.Ablation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(results[0].Stats.FinalClusters), "full_clusters")
	b.ReportMetric(float64(results[3].Stats.FinalClusters), "w_only_clusters")
}

// BenchmarkLeasingInference regenerates the §9 leasing-detection
// extension and reports the candidate count.
func BenchmarkLeasingInference(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		_, cands, err := e.Leasing(8)
		if err != nil {
			b.Fatal(err)
		}
		n = len(cands)
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkSnapshotSaveLoad measures dataset snapshot serialization in
// both formats. The binary load path is the one the store reloader
// takes on every hot swap; the acceptance bar is binary-load at least
// 3x faster than json-load.
func BenchmarkSnapshotSaveLoad(b *testing.B) {
	e := env(b)
	var jsonSnap, binSnap bytes.Buffer
	if err := e.DS.Save(&jsonSnap); err != nil {
		b.Fatal(err)
	}
	if err := e.DS.SaveBinary(&binSnap); err != nil {
		b.Fatal(err)
	}
	b.Run("json-save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			if err := e.DS.Save(&sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			back, err := prefix2org.Load(bytes.NewReader(jsonSnap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if len(back.Records) != len(e.DS.Records) {
				b.Fatal("lossy roundtrip")
			}
		}
	})
	b.Run("binary-save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := e.DS.SaveBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			back, err := prefix2org.Load(bytes.NewReader(binSnap.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if len(back.Records) != len(e.DS.Records) {
				b.Fatal("lossy roundtrip")
			}
		}
	})
	b.ReportMetric(float64(jsonSnap.Len()), "json_bytes")
	b.ReportMetric(float64(binSnap.Len()), "binary_bytes")
}

// BenchmarkLoadBinaryV2 measures the eager decode of a v2 snapshot —
// the path FileBuilder and non-view tools take. Contrast with
// BenchmarkOpenMmap, the in-place open of the same bytes.
func BenchmarkLoadBinaryV2(b *testing.B) {
	e := env(b)
	var snap bytes.Buffer
	if err := e.DS.SaveBinary(&snap); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(snap.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := prefix2org.Load(bytes.NewReader(snap.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if back.NumRecords() != len(e.DS.Records) {
			b.Fatal("lossy roundtrip")
		}
	}
}

// BenchmarkOpenMmap is the cold-open comparison behind -snapshot-mmap:
// "view" maps a v2 snapshot and serves the first lookup without
// decoding a single record; "v1-decode" is the legacy format's full
// decode of the same dataset. The gap between the two is the startup
// win the view format exists for.
func BenchmarkOpenMmap(b *testing.B) {
	e := env(b)
	path := filepath.Join(benchDir, "bench-open.p2o")
	if err := e.DS.SaveFile(path); err != nil {
		b.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := e.DS.SaveBinaryV1(&v1); err != nil {
		b.Fatal(err)
	}
	addr := e.DS.Records[0].Prefix.Addr()

	b.Run("view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := prefix2org.OpenSnapshotFile(context.Background(), path, prefix2org.OpenOptions{Mmap: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := ds.LookupAddr(addr); !ok {
				b.Fatal("lookup miss")
			}
			if err := ds.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v1-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := prefix2org.Load(bytes.NewReader(v1.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := ds.LookupAddr(addr); !ok {
				b.Fatal("lookup miss")
			}
		}
	})
}

// BenchmarkLookupAddrView measures steady-state lookups against a
// view-backed (mmap'd) dataset with every record chunk warm — the
// serve path of a daemon running -snapshot-mmap. The acceptance bar is
// parity with BenchmarkLookupAddr (the eagerly decoded index) within
// the bench-compare strict threshold.
func BenchmarkLookupAddrView(b *testing.B) {
	e := env(b)
	path := filepath.Join(benchDir, "bench-lookup-view.p2o")
	if err := e.DS.SaveFile(path); err != nil {
		b.Fatal(err)
	}
	ds, err := prefix2org.OpenSnapshotFile(context.Background(), path, prefix2org.OpenOptions{Mmap: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	for i := 0; i < ds.NumRecords(); i++ {
		_ = ds.RecordAt(i) // warm every chunk: steady state, not first touch
	}
	addrs := make([]netip.Addr, 0, 1024)
	for i := range e.DS.Records {
		addrs = append(addrs, e.DS.Records[i].Prefix.Addr())
		if len(addrs) == cap(addrs) {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ds.LookupAddr(addrs[i%len(addrs)]); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// --- incremental-rebuild benchmarks ------------------------------------------

var (
	deltaBenchOnce sync.Once
	deltaBenchDir  string
	deltaBenchPrev *prefix2org.Dataset
	deltaBenchErr  error
)

// deltaBenchEnv prepares the incremental-rebuild scenario once: a
// paper-scale world built with delta state retained, then a BGP-origin
// churn step written over the same directory. Benchmarks then rebuild
// that churned directory from scratch (full) or by splicing (delta).
func deltaBenchEnv(b *testing.B) (string, *prefix2org.Dataset) {
	b.Helper()
	deltaBenchOnce.Do(func() {
		w, err := synth.Generate(synth.DefaultConfig())
		if err != nil {
			deltaBenchErr = err
			return
		}
		deltaBenchDir, deltaBenchErr = os.MkdirTemp("", "p2o-bench-delta")
		if deltaBenchErr != nil {
			return
		}
		if deltaBenchErr = w.WriteDir(deltaBenchDir); deltaBenchErr != nil {
			return
		}
		deltaBenchPrev, deltaBenchErr = prefix2org.BuildFromDir(
			context.Background(), deltaBenchDir, prefix2org.Options{Incremental: true})
		if deltaBenchErr != nil {
			return
		}
		if w, deltaBenchErr = w.Evolve(synth.EvolveOptions{Seed: 42, OriginShifts: 8}); deltaBenchErr != nil {
			return
		}
		deltaBenchErr = w.WriteDir(deltaBenchDir)
	})
	if deltaBenchErr != nil {
		b.Fatal(deltaBenchErr)
	}
	return deltaBenchDir, deltaBenchPrev
}

// BenchmarkDeltaRebuild contrasts the two ways to pick up a small input
// change: a full pipeline run over the churned directory versus an
// incremental BuildDelta splicing against the previous dataset. Both
// produce byte-identical snapshots (TestDeltaEquivalence); the
// acceptance bar is delta at least 5x faster than full, enforced by the
// bench-compare ratio check.
func BenchmarkDeltaRebuild(b *testing.B) {
	dir, prev := deltaBenchEnv(b)
	opts := prefix2org.Options{Incremental: true}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := prefix2org.BuildFromDir(context.Background(), dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			if ds.NumRecords() == 0 {
				b.Fatal("empty dataset")
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		var res *prefix2org.DeltaResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = prefix2org.BuildDelta(context.Background(), prev, dir, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Dataset.NumRecords() == 0 {
				b.Fatal("empty dataset")
			}
		}
		b.ReportMetric(float64(res.Affected), "affected")
		b.ReportMetric(float64(res.Reused), "reused")
	})
}

// BenchmarkBuildManifest measures the change-detection floor: hashing
// every input file of the data directory. This is the cost a no-op
// delta reload pays to discover there is nothing to do.
func BenchmarkBuildManifest(b *testing.B) {
	dir, _ := deltaBenchEnv(b)
	var files int
	for i := 0; i < b.N; i++ {
		m, err := prefix2org.BuildManifest(context.Background(), dir)
		if err != nil {
			b.Fatal(err)
		}
		files = len(m.Entries)
	}
	b.ReportMetric(float64(files), "files")
}
